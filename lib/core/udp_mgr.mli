(** UDP protocol manager: endpoint minting, guarded demultiplexing, and
    the anti-spoof/anti-snoop policy of paper section 3.1. *)

type t

type spoof_policy =
  | Overwrite  (** source fields always rewritten from the endpoint (fast) *)
  | Verify     (** claimed source checked and rejected on mismatch *)

type error = [ `Port_in_use of int ]

type counters = {
  mutable rx : int;
  mutable bad_checksum : int;
  mutable no_port : int;
  mutable delivered : int;
  mutable tx : int;
  mutable spoof_rejected : int;
  mutable unreachable_sent : int;  (** ICMP port-unreachables generated *)
}

val create : Graph.t -> Ip_mgr.t -> t

val node : t -> Graph.node
val counters : t -> counters
val set_spoof_policy : t -> spoof_policy -> unit

val exclude_ports : t -> int list -> unit
(** Cede destination ports to an alternative UDP implementation (paper
    section 3.1's multiple-implementations mechanism). *)

val bind : t -> owner:string -> port:int -> (Endpoint.t, [> error ]) result
(** Mint an endpoint for a free port. *)

val unbind : t -> Endpoint.t -> unit

val install_recv :
  t -> Endpoint.t -> ?cost:Sim.Stime.t -> (Pctx.t -> unit) -> unit -> unit
(** Attach a receive handler; the guard is derived from the endpoint (the
    handler sees only its own port's datagrams) and the endpoint's port
    is its dispatch key, so raises on other ports never evaluate it.
    Returns the uninstaller. *)

val install_recv_linear :
  t -> Endpoint.t -> ?cost:Sim.Stime.t -> (Pctx.t -> unit) -> unit -> unit
(** {!install_recv} without the dispatch key: the guard is scanned on
    every raise.  The pre-index behaviour, kept for the guard-scaling
    ablation. *)

val install_recv_filtered :
  t -> Endpoint.t -> Filter.t -> ?cost:Sim.Stime.t -> (Pctx.t -> unit) ->
  unit -> unit
(** Like {!install_recv}, but additionally demultiplexed by an
    interpreted packet filter whose evaluation cost is charged per
    datagram. *)

val install_recv_compiled :
  t -> Endpoint.t -> Filter.t -> ?cost:Sim.Stime.t -> (Pctx.t -> unit) ->
  unit -> unit
(** {!install_recv_filtered} with the filter compiled
    ({!Filter.compile}): identical delivery, charged
    {!Filter.compiled_cost} instead of {!Filter.eval_cost}. *)

val install_recv_ephemeral :
  t -> Endpoint.t -> ?budget:Sim.Stime.t -> (Pctx.t -> Spin.Ephemeral.t) ->
  unit -> unit
(** Interrupt-level EPHEMERAL receive handler. *)

val send :
  t -> Endpoint.t -> ?prio:Sim.Cpu.prio -> ?checksum:bool ->
  dst:Proto.Ipaddr.t * int -> string -> unit
(** Send a datagram from the endpoint.  [~checksum:false] is the
    application-specific no-checksum variant of section 1.1. *)

val send_mbuf :
  t -> Endpoint.t -> ?prio:Sim.Cpu.prio -> ?checksum:bool ->
  dst:Proto.Ipaddr.t * int -> Mbuf.rw Mbuf.t -> unit
(** Zero-copy send: headers are prepended into the mbuf's headroom and
    the chain travels to the device without a payload-byte copy.  The
    mbuf is consumed (the device takes ownership at transmit). *)

val send_multi :
  t -> Endpoint.t -> ?prio:Sim.Cpu.prio -> ?checksum:bool ->
  dsts:(Proto.Ipaddr.t * int) list -> string -> unit
(** Multicast semantics (section 5.1): marshal and checksum once,
    replicate to every destination. *)

val send_claiming :
  t -> Endpoint.t -> ?prio:Sim.Cpu.prio -> ?checksum:bool ->
  claimed_src_port:int -> dst:Proto.Ipaddr.t * int -> string ->
  (unit, [> `Spoof_rejected ]) result
(** Demonstrates the two anti-spoofing strategies: under [Overwrite] the
    claimed source is ignored; under [Verify] mismatches are rejected. *)

val bound_ports : t -> int list
