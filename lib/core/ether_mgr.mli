(** Ethernet protocol manager (bottom of the graph).

    Owns the device; raises [<dev>.PacketRecv] from the driver's interrupt
    upcall.  Applications may attach handlers only for non-reserved
    EtherTypes, and interrupt-level delivery requires an {!Spin.Ephemeral}
    program — the type system enforcing the paper's EPHEMERAL check. *)

type t

type error = [ `Reserved_etype of int ]

val create : Graph.t -> Netsim.Dev.t -> t

val dev : t -> Netsim.Dev.t
val node : t -> Graph.node
val mtu : t -> int
val mac : t -> Proto.Ether.Mac.t

val prio : t -> Sim.Cpu.prio
(** Execution priority matching the graph's current delivery mode. *)

val touches_data : t -> bool
(** True on programmed-I/O devices, where the CPU already touches every
    byte — transports fold their checksums into that pass (integrated
    layer processing, [CT90]). *)

val install_protocol :
  t -> child:string -> guard:(Pctx.t -> bool) -> ?key:int ->
  ?keys:int list -> ?exact:bool ->
  ?dyncost:(Pctx.t -> Sim.Stime.t) -> ?cacheable:bool -> cost:Sim.Stime.t ->
  (Pctx.t -> unit) -> unit -> unit
(** Trusted install for in-kernel protocol layers (IP, ARP).  [key] is
    the handler's dispatch key (e.g. [Filter.ether_type_key]) when the
    guard implies one; [keys] adds further dispatch keys and [exact]
    asserts the guard is equivalent to its keys so the merged decision
    tree may skip it on proven paths; [cacheable] asserts the guard is a
    pure function of the frame's flow signature (see
    {!Spin.Dispatcher.install}). *)

val etype_guard : int -> Pctx.t -> bool
(** Guard matching frames of one EtherType (the paper's Figure 2). *)

val install_ephemeral :
  t -> owner:string -> etype:int -> ?budget:Sim.Stime.t ->
  (Pctx.t -> Spin.Ephemeral.t) -> ((unit -> unit), [> error ]) result
(** Application install at interrupt level.  Rejects reserved EtherTypes
    (IP, ARP) — applications cannot snoop kernel protocols. *)

val install_handler :
  t -> owner:string -> etype:int -> ?cost:Sim.Stime.t -> (Pctx.t -> unit) ->
  ((unit -> unit), [> error ]) result
(** Thread-delivered application handler. *)

val send :
  t -> ?prio:Sim.Cpu.prio -> dst:Proto.Ether.Mac.t -> etype:int ->
  Mbuf.rw Mbuf.t -> unit
(** Frame and transmit; the source MAC always comes from the device
    (anti-spoof by overwrite — the fast policy of section 3.1). *)
