(* The Ethernet protocol manager: the bottom of the protocol graph.

   The device driver's receive upcall raises <dev>.PacketRecv; everything
   above demultiplexes with guards.  The manager is the only code that
   touches the device directly — applications obtain access through
   manager operations, never raw device handles, so they can neither
   snoop frames (guards filter by EtherType) nor transmit arbitrary
   frames (the manager writes the source MAC itself). *)

type error = [ `Reserved_etype of int ]

type t = {
  graph : Graph.t;
  dev : Netsim.Dev.t;
  node : Graph.node;
  costs : Netsim.Costs.t;
  mutable reserved : int list;
}

let create graph dev =
  let node = Graph.node graph (Netsim.Dev.name dev) in
  let t =
    {
      graph;
      dev;
      node;
      costs = Netsim.Host.costs (Graph.host graph);
      reserved = [ Proto.Ether.etype_ip; Proto.Ether.etype_arp ];
    }
  in
  (* Driver top half: the only code running directly off the device
     interrupt.  It immediately raises the protocol event. *)
  Netsim.Dev.set_rx dev (fun pkt ->
      Spin.Dispatcher.raise (Graph.recv_event node) (Pctx.make dev pkt));
  (* Coalesced receive: one batched raise for frames delivered in one
     interrupt, amortizing the per-raise accounting. *)
  Netsim.Dev.set_rx_batch dev (fun pkts ->
      Spin.Dispatcher.raise_batch (Graph.recv_event node)
        (List.map (Pctx.make dev) pkts));
  (* Polled receive (admission control): frames past the interrupt
     budget enter the graph at thread priority, and the override sticks
     down the whole walk — this is what keeps the livelock mitigation
     from re-escalating at the first nested interrupt-mode event. *)
  Netsim.Dev.set_rx_deferred dev (fun pkts ->
      Spin.Dispatcher.raise_batch ~prio:Sim.Cpu.Thread
        (Graph.recv_event node)
        (List.map (Pctx.make dev) pkts));
  t

let dev t = t.dev
let node t = t.node

(* Programmed-I/O devices make the CPU touch every byte anyway, so
   transports fold their checksum into that pass (integrated layer
   processing, [CT90], which the paper cites as an optimization Plexus
   enables). *)
let touches_data t =
  (Netsim.Dev.params t.dev).Netsim.Costs.pio_ns_per_byte > 0.
let mtu t = Netsim.Dev.mtu t.dev
let mac t = Netsim.Dev.mac t.dev

(* The current execution priority for the send path: if the graph runs at
   interrupt level (Figure 5 "interrupt"), replies are sent from
   interrupt context too. *)
let prio t =
  match Spin.Dispatcher.mode (Graph.recv_event t.node) with
  | Spin.Dispatcher.Interrupt -> Sim.Cpu.Interrupt
  | Spin.Dispatcher.Thread -> Sim.Cpu.Thread

let cpu t = Netsim.Host.cpu (Graph.host t.graph)

(* Trusted install used by in-kernel protocol managers (IP, ARP).
   [cacheable] asserts the guard is a pure function of the frame's flow
   signature (EtherType, MAC, protocol, addresses, ports). *)
let install_protocol t ~child ~guard ?key ?keys ?exact ?dyncost ?cacheable
    ~cost fn =
  Graph.add_edge t.graph ~parent:t.node ~child ~label:"guard";
  Spin.Dispatcher.install (Graph.recv_event t.node) ~guard ?key ?keys ?exact
    ?dyncost ?cacheable ~label:child ~cost fn

let etype_guard etype ctx =
  match Proto.Ether.parse (Pctx.view ctx) with
  | Some h -> h.Proto.Ether.etype = etype
  | None -> false

(* Application-facing install: the manager checks the EtherType is not one
   of the kernel protocols' (anti-snoop) and requires an EPHEMERAL handler
   for interrupt-level delivery (section 3.3): a non-ephemeral procedure
   simply cannot be passed here — its type does not fit. *)
let install_ephemeral t ~owner ~etype ?budget fn =
  ignore owner;
  if List.mem etype t.reserved then Error (`Reserved_etype etype)
  else begin
    Graph.add_edge t.graph ~parent:t.node ~child:(owner ^ ":" ^ string_of_int etype)
      ~label:"ephemeral";
    Ok
      (Spin.Dispatcher.install_ephemeral (Graph.recv_event t.node)
         ~guard:(etype_guard etype) ~key:(Filter.ether_type_key etype)
         ~exact:true ~label:owner ?budget fn)
  end

(* Thread-delivered application handler on a non-reserved EtherType. *)
let install_handler t ~owner ~etype ?(cost = Sim.Stime.us 4) fn =
  if List.mem etype t.reserved then Error (`Reserved_etype etype)
  else begin
    Graph.add_edge t.graph ~parent:t.node ~child:(owner ^ ":" ^ string_of_int etype)
      ~label:"handler";
    Ok
      (Spin.Dispatcher.install (Graph.recv_event t.node)
         ~guard:(etype_guard etype) ~key:(Filter.ether_type_key etype)
         ~exact:true ~cacheable:true ~label:owner ~cost fn)
  end

(* Send a frame: charge the Ethernet output cost, write the header — the
   source MAC comes from the device, never the caller — and hand the
   frame to the driver. *)
let send t ?prio:p ~dst ~etype payload =
  let prio = match p with Some p -> p | None -> prio t in
  Sim.Cpu.run (cpu t) ~prio ~cost:t.costs.Netsim.Costs.layer.ether_out (fun () ->
      Proto.Ether.encapsulate payload
        { Proto.Ether.dst; src = Netsim.Dev.mac t.dev; etype };
      Netsim.Dev.transmit t.dev ~prio payload)
