(* The Plexus protocol graph (paper section 3, Figure 1).

   Nodes are protocols; each node owns a [PacketRecv] event.  An edge from
   parent to child exists when the child's manager installs a guarded
   handler on the parent's event: the guard demultiplexes one layer, the
   handler pushes the packet up.  The graph object records the structure
   for introspection (and renders it as DOT), while the dispatcher holds
   the operational state. *)

type node = {
  node_name : string;
  recv : Pctx.t Spin.Dispatcher.event;
}

type t = {
  host : Netsim.Host.t;
  disp : Spin.Dispatcher.t;
  mutable nodes : node list;
  mutable edges : (string * string * string) list; (* parent, child, label *)
}

let create host =
  {
    host;
    disp = Spin.Kernel.dispatcher (Netsim.Host.kernel host);
    nodes = [];
    edges = [];
  }

let host t = t.host
let dispatcher t = t.disp
let kernel t = Netsim.Host.kernel t.host
let registry t = Spin.Kernel.registry (kernel t)
let trace t = Spin.Kernel.trace (kernel t)
let flight t = Spin.Kernel.flight (kernel t)

let node t name =
  match List.find_opt (fun n -> n.node_name = name) t.nodes with
  | Some n -> n
  | None ->
      let recv = Spin.Dispatcher.event t.disp (name ^ ".PacketRecv") in
      (* Every protocol event demultiplexes packet contexts, so they all
         share one key extractor: the demux dimensions the packet
         presents at its current layer (EtherType, IP protocol, ports).
         Managers that know their guard's literal install with ~key.
         The vectored form fills a per-event scratch array in place, so
         steady-state dispatch allocates nothing. *)
      Spin.Dispatcher.set_keyvfn recv ~dims:Filter.num_key_dims
        Filter.read_context_keys;
      (* ... and one flow-signature extractor, so any node can serve as
         a flow-path cache root when the kernel enables caching.  Only
         fresh, unfragmented frames are signable; everything else
         bypasses the cache (Filter.flow_signature). *)
      Spin.Dispatcher.set_sigfn recv Filter.flow_signature;
      (* ... and one flight-recorder mark extractor: the sampled packet
         id rides on the mbuf, so every node in the graph attributes its
         raise/handler stages to the same end-to-end timeline. *)
      Spin.Dispatcher.set_markfn recv (fun ctx -> Mbuf.mark ctx.Pctx.pkt);
      let n = { node_name = name; recv } in
      t.nodes <- t.nodes @ [ n ];
      n

let find_node t name = List.find_opt (fun n -> n.node_name = name) t.nodes

let name (n : node) = n.node_name
let recv_event (n : node) = n.recv

let add_edge t ~parent ~child ~label =
  t.edges <- t.edges @ [ (parent.node_name, child, label) ]

let remove_edge t ~parent ~child =
  t.edges <-
    List.filter (fun (p, c, _) -> not (p = parent && c = child)) t.edges

let nodes t = List.map (fun n -> n.node_name) t.nodes
let edges t = t.edges

(* Switch every node's delivery mode at once — the interrupt vs. thread
   comparison of Figure 5. *)
let set_delivery t mode =
  List.iter (fun n -> Spin.Dispatcher.set_mode n.recv mode) t.nodes

let to_dot t =
  let b = Buffer.create 256 in
  Buffer.add_string b "digraph plexus {\n  rankdir=BT;\n";
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "  %S;\n" n.node_name))
    t.nodes;
  List.iter
    (fun (p, c, l) ->
      Buffer.add_string b (Printf.sprintf "  %S -> %S [label=%S];\n" p c l))
    t.edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
