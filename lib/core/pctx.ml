(* The payload of protocol-graph events: a read-only packet plus the
   demultiplexing state accumulated as it climbs the graph.

   Handlers receive the packet [READONLY] (an [Mbuf.ro] — writes do not
   type-check, per the paper's Figure 4) along with a cursor [off] marking
   the start of the current layer's data.  Each protocol layer raises the
   next event with an advanced cursor and its parsed header attached, so
   upper guards can discriminate (e.g. on ports) without re-parsing. *)

type t = {
  dev : Netsim.Dev.t;            (* arrival device *)
  pkt : Mbuf.ro Mbuf.t;          (* the full received frame, read-only *)
  off : int;                     (* start of the current layer *)
  limit : int;                   (* end of valid data (frames are padded) *)
  l2 : Proto.Ether.header option;
  ip : Proto.Ipv4.header option;
  src_port : int;                (* transport ports; -1 until parsed *)
  dst_port : int;
}

let make dev pkt =
  {
    dev;
    pkt;
    off = 0;
    limit = Mbuf.length pkt;
    l2 = None;
    ip = None;
    src_port = -1;
    dst_port = -1;
  }

(* A view of the packet from the cursor to the limit — the VIEW(a,T)
   idiom of Figure 2. *)
let view t : View.ro View.t =
  View.sub (View.ro (Mbuf.view t.pkt)) ~off:t.off ~len:(t.limit - t.off)

let advance t n = { t with off = t.off + n }

let with_l2 t h = { t with l2 = Some h }
let with_ip t h = { t with ip = Some h }
let with_ports t ~src_port ~dst_port = { t with src_port; dst_port }

let with_limit t n =
  if t.off + n > Mbuf.length t.pkt then invalid_arg "Pctx.with_limit";
  { t with limit = t.off + n }

(* Replace the packet entirely (IP reassembly delivers a fresh datagram
   that no longer corresponds to one frame).  The flight-recorder mark
   carries over: a sampled fragment's timeline continues through the
   reassembled datagram. *)
let with_payload t pkt =
  Mbuf.set_mark pkt (Mbuf.mark t.pkt);
  { t with pkt; off = 0; limit = Mbuf.length pkt }

let payload_len t = t.limit - t.off

(* True when the arrival device already made the CPU touch every payload
   byte (programmed I/O): transports then fold checksum verification into
   that pass instead of charging a separate one. *)
let data_touched_by_device t =
  (Netsim.Dev.params t.dev).Netsim.Costs.pio_ns_per_byte > 0.

let ip_exn t =
  match t.ip with
  | Some h -> h
  | None -> invalid_arg "Pctx.ip_exn: no IP header parsed"
