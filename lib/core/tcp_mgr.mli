(** TCP protocol manager: the shared TCP engine as a Plexus graph
    citizen, with per-connection demultiplexing and support for multiple
    coexisting TCP implementations (paper section 3.1). *)

type t
type conn

type error = [ `Port_in_use of int | `Ephemeral_exhausted ]
(** [`Ephemeral_exhausted]: every port in the ephemeral range has a live
    connection to the requested destination (or an explicit bind), so
    [connect] without [src_port] cannot proceed. *)

type counters = {
  mutable rx : int;
  mutable bad_checksum : int;
      (** Segments rejected by pseudo-header checksum verification before
          demultiplexing — a corrupted segment never selects a connection
          (or reaches a listener) by its possibly-corrupted ports. *)
  mutable no_match : int;
  mutable accepted : int;
  mutable eph_exhausted : int;
      (** Failed ephemeral allocations (full range sweep found no port
          free for the destination). *)
}

val create : Graph.t -> Ip_mgr.t -> t

val node : t -> Graph.node
val counters : t -> counters

val exclude_ports : t -> int list -> unit
(** Cede a set of destination ports to an alternative TCP implementation:
    this manager's guard stops matching them ("TCP-standard processes all
    TCP packets but those destined for the second"). *)

val exclude_src_ports : t -> int list -> unit
(** Cede packets by *source* port (the forwarder's reverse direction). *)

val listen :
  t -> owner:string -> port:int -> ?cfg:Proto.Tcp.config ->
  on_accept:(conn -> unit) -> unit ->
  (unit, [> `Port_in_use of int ]) result

val unlisten : t -> int -> unit

val connect :
  t -> owner:string -> ?src_port:int -> dst:Proto.Ipaddr.t * int ->
  ?cfg:Proto.Tcp.config -> unit -> (conn, [> error ]) result

val send : conn -> string -> unit
val close : conn -> unit
val abort : conn -> unit

val on_receive : conn -> (string -> unit) -> unit
val on_established : conn -> (unit -> unit) -> unit
val on_peer_close : conn -> (unit -> unit) -> unit
val on_close : conn -> (unit -> unit) -> unit
val on_error : conn -> (string -> unit) -> unit

val endpoint : conn -> Endpoint.t
val conn_state : conn -> Proto.Tcp.state
val tcp : conn -> Proto.Tcp.t
