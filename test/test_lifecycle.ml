(* Extension lifecycle: static verifier admission, per-generation
   resource ledgers, crash vs. termination accounting, runtime
   quarantine, and the zero-drop hot-swap protocol (directed + qcheck
   churn, single dispatcher and the 2-domain parallel datapath). *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t
let us = Sim.Stime.us
let ns = Sim.Stime.ns

let mk_dispatcher () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"cpu" in
  (e, cpu, Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs ())

(* ---- Verifier: budget inference and admission ------------------------- *)

let verifier_infer () =
  let b =
    Spin.Verifier.infer
      [
        Spin.Verifier.Enqueue;
        Spin.Verifier.Count;
        Spin.Verifier.Work { insns = 50 };
        Spin.Verifier.Alloc { mbufs = 2 };
        Spin.Verifier.Loop
          {
            iters = 3;
            body = [ Spin.Verifier.Count; Spin.Verifier.Alloc { mbufs = 1 } ];
          };
      ]
  in
  (* 300 + 100 + 50 + 2*200 + 3*(100 + 200) *)
  Alcotest.(check int) "insns" 1750 b.Spin.Verifier.b_insns;
  Alcotest.(check int) "allocs" 5 b.Spin.Verifier.b_allocs;
  Alcotest.(check int) "cost follows insns" 1750 b.Spin.Verifier.b_cost_ns;
  Alcotest.(check int) "cost as time" 1750
    (Sim.Stime.to_ns (Spin.Verifier.cost b));
  let z = Spin.Verifier.infer [] in
  Alcotest.(check int) "empty program is free" 0 z.Spin.Verifier.b_insns;
  let neg = Spin.Verifier.infer [ Spin.Verifier.Work { insns = -5 } ] in
  Alcotest.(check int) "negative insns clamp to zero" 0
    neg.Spin.Verifier.b_insns

let verifier_admit () =
  let b = Spin.Verifier.infer [ Spin.Verifier.Work { insns = 200 } ] in
  (match Spin.Verifier.admit (Spin.Verifier.policy ~max_insns:100 ()) (Some b) with
  | Error v ->
      Alcotest.(check string) "resource" "insns" v.Spin.Verifier.v_resource;
      Alcotest.(check int) "declared" 200 v.Spin.Verifier.v_declared;
      Alcotest.(check int) "allowed" 100 v.Spin.Verifier.v_allowed
  | Ok () -> Alcotest.fail "over-insns budget admitted");
  (match
     Spin.Verifier.admit (Spin.Verifier.policy ~max_cost_ns:100 ()) (Some b)
   with
  | Error v ->
      Alcotest.(check string) "cost gate" "cost_ns" v.Spin.Verifier.v_resource
  | Ok () -> Alcotest.fail "over-cost budget admitted");
  let alloc = Spin.Verifier.infer [ Spin.Verifier.Alloc { mbufs = 4 } ] in
  (match
     Spin.Verifier.admit (Spin.Verifier.policy ~max_allocs:2 ()) (Some alloc)
   with
  | Error v ->
      Alcotest.(check string) "alloc gate" "allocs" v.Spin.Verifier.v_resource
  | Ok () -> Alcotest.fail "over-alloc budget admitted");
  Alcotest.(check bool) "within limits admitted" true
    (Spin.Verifier.admit (Spin.Verifier.policy ~max_insns:200 ()) (Some b)
    = Ok ());
  Alcotest.(check bool) "uncertified admitted by default" true
    (Spin.Verifier.admit (Spin.Verifier.policy ()) None = Ok ());
  match
    Spin.Verifier.admit (Spin.Verifier.policy ~require_cert:true ()) None
  with
  | Error v ->
      Alcotest.(check string) "cert required" "certificate"
        v.Spin.Verifier.v_resource
  | Ok () -> Alcotest.fail "uncertified admitted under require_cert"

(* ---- Install-time enforcement ----------------------------------------- *)

let install_rejected_by_policy () =
  let _, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "ev" in
  Spin.Dispatcher.set_policy ev (Some (Spin.Verifier.policy ~max_insns:500 ()));
  (* under budget: admitted *)
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev
      ~ops:[ Spin.Verifier.Work { insns = 400 } ]
      ~cost:(us 1) ignore
  in
  Alcotest.(check int) "admitted handler installed" 1
    (Spin.Dispatcher.handler_count ev);
  (* over budget: rejected with the typed violation, nothing installed *)
  (try
     let (_ : unit -> unit) =
       Spin.Dispatcher.install ev ~label:"hog"
         ~ops:
           [
             Spin.Verifier.Loop
               { iters = 10; body = [ Spin.Verifier.Work { insns = 100 } ] };
           ]
         ~cost:(us 1) ignore
     in
     Alcotest.fail "over-budget install admitted"
   with
  | Spin.Dispatcher.Install_rejected { event; label; violation } ->
      Alcotest.(check string) "event name" "ev" event;
      Alcotest.(check string) "label" "hog" label;
      Alcotest.(check string) "resource" "insns"
        violation.Spin.Verifier.v_resource;
      Alcotest.(check int) "declared" 1000 violation.Spin.Verifier.v_declared);
  Alcotest.(check int) "rejected handler not installed" 1
    (Spin.Dispatcher.handler_count ev);
  (* uncertified passes unless the policy demands a certificate *)
  let u = Spin.Dispatcher.install ev ~cost:(us 1) ignore in
  u ();
  Spin.Dispatcher.set_policy ev
    (Some (Spin.Verifier.policy ~require_cert:true ()));
  (try
     let (_ : unit -> unit) = Spin.Dispatcher.install ev ~cost:(us 1) ignore in
     Alcotest.fail "uncertified install admitted under require_cert"
   with Spin.Dispatcher.Install_rejected { violation; _ } ->
     Alcotest.(check string) "certificate demanded" "certificate"
       violation.Spin.Verifier.v_resource);
  (* clearing the policy reopens the event *)
  Spin.Dispatcher.set_policy ev None;
  let (_ : unit -> unit) = Spin.Dispatcher.install ev ~cost:(us 1) ignore in
  Alcotest.(check int) "open again" 2 (Spin.Dispatcher.handler_count ev)

let link_rejected_by_policy () =
  let _, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "ev" in
  let dom = Spin.Domain.of_interfaces "d" [] in
  let ran = ref false in
  let ext () =
    Spin.Extension.Compiler.compile ~name:"hog"
      ~ops:[ Spin.Verifier.Work { insns = 1000 } ]
      ~imports:[]
      (fun lk ->
        ran := true;
        lk.Spin.Extension.on_unlink
          (Spin.Dispatcher.install ev ~cost:(us 1) ignore))
  in
  Alcotest.(check bool) "certificate carries the budget" true
    (Spin.Extension.budget (ext ())
    = Some (Spin.Verifier.infer [ Spin.Verifier.Work { insns = 1000 } ]));
  (match
     Spin.Linker.link
       ~policy:(Spin.Verifier.policy ~max_insns:500 ())
       ~domain:dom (ext ())
   with
  | Error (Spin.Extension.Over_budget v) ->
      Alcotest.(check int) "declared" 1000 v.Spin.Verifier.v_declared;
      Alcotest.(check bool) "rejected before init ran" false !ran
  | Ok _ | Error _ -> Alcotest.fail "over-budget link admitted");
  (* the same certificate links fine under a looser policy *)
  match
    Spin.Linker.link
      ~policy:(Spin.Verifier.policy ~max_insns:2000 ())
      ~domain:dom (ext ())
  with
  | Ok _ -> Alcotest.(check bool) "init ran" true !ran
  | Error f -> Alcotest.failf "loose link failed: %a" Spin.Extension.pp_failure f

(* ---- Crash vs. termination accounting --------------------------------- *)

let eph_crash_counted_distinctly () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "ev" in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"bad" (fun _ ->
        failwith "boom")
  in
  Spin.Dispatcher.raise ev 0;
  Sim.Engine.run e;
  Alcotest.(check int) "crash counted as eph failure" 1
    (Spin.Dispatcher.eph_failures d);
  Alcotest.(check int) "crash counted as fault" 1 (Spin.Dispatcher.faults d);
  Alcotest.(check int) "crash is not a termination" 0
    (Spin.Dispatcher.terminations d);
  Alcotest.(check int) "crashed handler uninstalled" 0
    (Spin.Dispatcher.handler_count ev);
  (* a healthy handler that overruns its budget terminates — the other
     counter, and it stays installed *)
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"slow" ~budget:(ns 100)
      (fun _ -> [ Spin.Ephemeral.work ~label:"w" ~cost:(us 1) ignore ])
  in
  Spin.Dispatcher.raise ev 0;
  Sim.Engine.run e;
  Alcotest.(check int) "overrun is a termination" 1
    (Spin.Dispatcher.terminations d);
  Alcotest.(check int) "overrun is not a failure" 1
    (Spin.Dispatcher.eph_failures d);
  Alcotest.(check int) "terminated handler stays installed" 1
    (Spin.Dispatcher.handler_count ev)

let async_exceptions_propagate () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "ev" in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"oom" (fun _ ->
        raise Stack_overflow)
  in
  Spin.Dispatcher.raise ev 0;
  Alcotest.check_raises "plan-time Stack_overflow propagates" Stack_overflow
    (fun () -> Sim.Engine.run e);
  Alcotest.(check int) "not contained as a failure" 0
    (Spin.Dispatcher.eph_failures d);
  (* same for a guard *)
  let e2, _, d2 = mk_dispatcher () in
  let ev2 = Spin.Dispatcher.event d2 "ev" in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev2
      ~guard:(fun _ -> raise Out_of_memory)
      ~cost:(us 1) ignore
  in
  Spin.Dispatcher.raise ev2 0;
  Alcotest.check_raises "guard Out_of_memory propagates" Out_of_memory
    (fun () -> Sim.Engine.run e2);
  Alcotest.(check int) "not contained as a fault" 0 (Spin.Dispatcher.faults d2)

let certified_budget_is_runtime_budget () =
  (* [ops] without [budget]: the certificate's cost bound becomes the
     ephemeral enforcement ceiling. *)
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "ev" in
  let committed = ref 0 in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"cert"
      ~ops:[ Spin.Verifier.Work { insns = 500 } ]
      (fun _ ->
        [
          Spin.Ephemeral.work ~label:"a" ~cost:(ns 300) (fun () ->
              incr committed);
          Spin.Ephemeral.work ~label:"b" ~cost:(ns 300) (fun () ->
              incr committed);
        ])
  in
  Spin.Dispatcher.raise ev 0;
  Sim.Engine.run e;
  Alcotest.(check int) "only the affordable prefix committed" 1 !committed;
  Alcotest.(check int) "overrun terminated at the certified bound" 1
    (Spin.Dispatcher.terminations d)

(* ---- Zero-budget ephemeral (regression) ------------------------------- *)

let ephemeral_zero_budget () =
  let n = ref 0 in
  let prog =
    [ Spin.Ephemeral.work ~label:"w" ~cost:(ns 1) (fun () -> incr n) ]
  in
  let r = Spin.Ephemeral.execute ~budget:Sim.Stime.zero prog in
  Alcotest.(check bool) "zero budget terminates" true
    r.Spin.Ephemeral.terminated;
  Alcotest.(check int) "nothing committed" 0 r.Spin.Ephemeral.committed;
  Alcotest.(check int) "nothing charged" 0
    (Sim.Stime.to_ns r.Spin.Ephemeral.consumed);
  Alcotest.(check int) "no action ran" 0 !n;
  (* the empty program fits any budget, including zero *)
  let r0 = Spin.Ephemeral.execute ~budget:Sim.Stime.zero [] in
  Alcotest.(check bool) "empty program is not a termination" false
    r0.Spin.Ephemeral.terminated

(* ---- Ledger generations ----------------------------------------------- *)

let rcount reg name =
  match List.assoc_opt name (Observe.Registry.snapshot reg) with
  | Some (Observe.Registry.Count n) -> n
  | _ -> -1

let ledger_generations_split () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"cpu" in
  let reg = Observe.Registry.create ~name:"t" () in
  let d =
    Spin.Dispatcher.create ~registry:reg ~cpu
      ~costs:Spin.Dispatcher.default_costs ()
  in
  let ev = Spin.Dispatcher.event d "ev" in
  let u1 = Spin.Dispatcher.install ev ~label:"x" ~cost:(us 1) ignore in
  Spin.Dispatcher.raise ev 0;
  Sim.Engine.run e;
  u1 ();
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~label:"x" ~cost:(us 1) ignore
  in
  Spin.Dispatcher.raise ev 0;
  Spin.Dispatcher.raise ev 0;
  Sim.Engine.run e;
  (* the retired generation's ledger is frozen, the replacement starts
     from zero under its own generation-qualified name *)
  Alcotest.(check int) "gen 0 ledger frozen" 1 (rcount reg "spin.ev.x.runs");
  Alcotest.(check int) "gen 1 ledger separate" 2
    (rcount reg "spin.ev.x#1.runs");
  match Spin.Dispatcher.dump d with
  | [ ei ] -> (
      match ei.Spin.Dispatcher.ei_handlers with
      | [ hi ] ->
          Alcotest.(check int) "dump surfaces the generation" 1
            hi.Spin.Dispatcher.hi_gen;
          Alcotest.(check int) "and its own run count" 2
            hi.Spin.Dispatcher.hi_runs
      | hs -> Alcotest.failf "expected 1 handler, got %d" (List.length hs))
  | eis -> Alcotest.failf "expected 1 event, got %d" (List.length eis)

(* ---- Quarantine ------------------------------------------------------- *)

let quarantine_evicts_hog () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "ev" in
  Spin.Dispatcher.set_quarantine ev
    (Some (Spin.Verifier.quarantine ~window_ns:1_000_000 ~max_cpu_ns:10_000 ()));
  let cheap = ref 0 and hog = ref 0 in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~label:"cheap" ~cost:(ns 100) (fun _ ->
        incr cheap)
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~label:"hog" ~cost:(us 6) (fun _ -> incr hog)
  in
  for i = 1 to 5 do
    Spin.Dispatcher.raise ev i
  done;
  Sim.Engine.run e;
  (* 6 us/run against 10 us per 1 ms: the hog crosses on its second run
     and is evicted; the cheap handler rides out all five deliveries *)
  Alcotest.(check int) "hog evicted" 1 (Spin.Dispatcher.quarantines d);
  Alcotest.(check int) "after its second run" 2 !hog;
  Alcotest.(check int) "cheap handler untouched" 5 !cheap;
  Alcotest.(check int) "hog gone from the event" 1
    (Spin.Dispatcher.handler_count ev)

let quarantine_window_forgives_idle () =
  (* The same hog under a window shorter than its idle gaps: every
     check starts a fresh window first, so no single run can be blamed
     for more than it did inside one window — never evicted. *)
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "ev" in
  Spin.Dispatcher.set_quarantine ev
    (Some (Spin.Verifier.quarantine ~window_ns:1_000 ~max_cpu_ns:10_000 ()));
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~label:"hog" ~cost:(us 6) ignore
  in
  for i = 0 to 4 do
    ignore
      (Sim.Engine.schedule_in e
         ~delay:(us (10 * (i + 1)))
         (fun () -> Spin.Dispatcher.raise ev i))
  done;
  Sim.Engine.run e;
  Alcotest.(check int) "idle-spread hog forgiven" 0
    (Spin.Dispatcher.quarantines d);
  Alcotest.(check int) "still installed" 1 (Spin.Dispatcher.handler_count ev)

let quarantine_on_terminations () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "ev" in
  Spin.Dispatcher.set_quarantine ev
    (Some
       (Spin.Verifier.quarantine ~window_ns:1_000_000_000 ~max_terminations:2
          ()));
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"thrash" ~budget:(ns 10)
      (fun _ -> [ Spin.Ephemeral.work ~label:"w" ~cost:(us 1) ignore ])
  in
  for i = 1 to 5 do
    Spin.Dispatcher.raise ev i
  done;
  Sim.Engine.run e;
  Alcotest.(check int) "evicted after the third termination" 1
    (Spin.Dispatcher.quarantines d);
  Alcotest.(check int) "terminations stop accruing" 3
    (Spin.Dispatcher.terminations d)

(* ---- Hot-swap: directed ----------------------------------------------- *)

let mon_ext ~ev ~log gen =
  Spin.Extension.Compiler.compile
    ~name:(Printf.sprintf "mon.g%d" gen)
    ~imports:[]
    (fun lk ->
      lk.Spin.Extension.on_unlink
        (Spin.Dispatcher.install ev ~label:"mon" ~cost:(us 1) (fun v ->
             log := (gen, v) :: !log)))

let swap_mid_delivery_zero_drop () =
  let e, _, d = mk_dispatcher () in
  let dom = Spin.Domain.of_interfaces "d" [] in
  let ev = Spin.Dispatcher.event d "ev" in
  let log = ref [] in
  let swap_req = ref false and inflight_at_flip = ref (-1) in
  let link = ref None in
  (* control handler: installed first, so its queued invocation runs
     before the monitor's — the replace it performs catches the same
     raise's monitor delivery still queued *)
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~label:"ctl" ~cost:(us 1) (fun _ ->
        if !swap_req then begin
          swap_req := false;
          match !link with
          | None -> ()
          | Some l -> (
              match Spin.Linker.replace ~disp:d ~domain:dom l
                      (mon_ext ~ev ~log 1)
              with
              | Ok (nl, sw) ->
                  link := Some nl;
                  inflight_at_flip := sw.Spin.Linker.swap_inflight
              | Error f ->
                  Alcotest.failf "replace failed: %a" Spin.Extension.pp_failure
                    f)
        end)
  in
  (match Spin.Linker.link ~domain:dom (mon_ext ~ev ~log 0) with
  | Ok l -> link := Some l
  | Error f -> Alcotest.failf "link failed: %a" Spin.Extension.pp_failure f);
  Spin.Dispatcher.raise ev 1;
  Sim.Engine.run e;
  swap_req := true;
  (* two raises queue two old-generation deliveries; the control body
     of the first flips mid-flight *)
  Spin.Dispatcher.raise ev 2;
  Spin.Dispatcher.raise ev 3;
  Sim.Engine.run e;
  Spin.Dispatcher.raise ev 4;
  Sim.Engine.run e;
  Alcotest.(check (list (pair int int)))
    "every payload delivered to exactly one generation, in order"
    [ (0, 1); (0, 2); (0, 3); (1, 4) ]
    (List.rev !log);
  Alcotest.(check int) "old-generation deliveries were in flight at the flip"
    2 !inflight_at_flip;
  Alcotest.(check int) "drained after the run" 0
    (Spin.Dispatcher.swap_inflight d);
  Alcotest.(check int) "one swap completed" 1 (Spin.Dispatcher.swaps d)

let swap_abort_on_link_failure () =
  let e, _, d = mk_dispatcher () in
  let dom = Spin.Domain.of_interfaces "d" [] in
  let ev = Spin.Dispatcher.event d "ev" in
  let log = ref [] in
  let l =
    match Spin.Linker.link ~domain:dom (mon_ext ~ev ~log 0) with
    | Ok l -> l
    | Error f -> Alcotest.failf "link failed: %a" Spin.Extension.pp_failure f
  in
  (* the next generation's imports do not resolve: the old one must be
     left running, nothing staged leaks in *)
  let broken =
    Spin.Extension.Compiler.compile ~name:"broken"
      ~imports:[ ("NoSuch", "op") ]
      (fun _ -> ())
  in
  (match Spin.Linker.replace ~disp:d ~domain:dom l broken with
  | Ok _ -> Alcotest.fail "broken replacement linked"
  | Error _ -> ());
  Spin.Dispatcher.raise ev 7;
  Sim.Engine.run e;
  Alcotest.(check (list (pair int int)))
    "old generation still running" [ (0, 7) ] (List.rev !log);
  Alcotest.(check int) "no swap recorded" 0 (Spin.Dispatcher.swaps d);
  Alcotest.(check int) "single handler installed" 1
    (Spin.Dispatcher.handler_count ev)

(* ---- Hot-swap: qcheck churn ------------------------------------------- *)

(* Random install/uninstall/replace/raise sequences against a pure
   model.  Slots 0..2 each hold at most one linked extension instance;
   every instance logs (slot, instance, payload).  The model tracks the
   installed list in table order and predicts the exact delivery log:
   raises deliver to every installed instance in order; a replace during
   a raise's delivery (RaiseSwapMid) still delivers that payload to the
   OLD instance — queued work drains on the retired generation — while
   every later payload sees only the new one.  Zero drops, order
   preserved, counter-for-counter. *)
type churn_op =
  | CInstall of int
  | CUninstall of int
  | CReplace of int
  | CRaise
  | CRaiseSwapMid of int

let churn_gen =
  QCheck.Gen.(
    list_size (0 -- 40)
      (oneof
         [
           map (fun s -> CInstall s) (0 -- 2);
           map (fun s -> CUninstall s) (0 -- 2);
           map (fun s -> CReplace s) (0 -- 2);
           return CRaise;
           map (fun s -> CRaiseSwapMid s) (0 -- 2);
         ]))

let pp_churn_op = function
  | CInstall s -> Printf.sprintf "I%d" s
  | CUninstall s -> Printf.sprintf "U%d" s
  | CReplace s -> Printf.sprintf "R%d" s
  | CRaise -> "!"
  | CRaiseSwapMid s -> Printf.sprintf "!R%d" s

let churn_arbitrary =
  QCheck.make churn_gen ~print:(fun ops ->
      String.concat " " (List.map pp_churn_op ops))

let churn_preserves_delivery =
  QCheck.Test.make ~count:100
    ~name:"replace churn drops nothing and preserves delivery order"
    churn_arbitrary
    (fun ops ->
      let e, _, d = mk_dispatcher () in
      let dom = Spin.Domain.of_interfaces "d" [] in
      let ev = Spin.Dispatcher.event d "ev" in
      let log = ref [] in
      let ext ~slot ~inst =
        Spin.Extension.Compiler.compile
          ~name:(Printf.sprintf "churn.%d.%d" slot inst)
          ~imports:[]
          (fun lk ->
            lk.Spin.Extension.on_unlink
              (Spin.Dispatcher.install ev
                 ~label:(Printf.sprintf "s%d" slot)
                 ~cost:(us 1)
                 (fun v -> log := (slot, inst, v) :: !log)))
      in
      let links = Hashtbl.create 3 in
      let next_inst = Array.make 3 0 in
      let fresh slot =
        let i = next_inst.(slot) in
        next_inst.(slot) <- i + 1;
        i
      in
      (* model: installed (slot, inst) in table order + expected log *)
      let installed = ref [] and expect = ref [] in
      let payload = ref 0 in
      (* a swap request served from inside a delivery, like a manager
         reacting to traffic *)
      let swap_req = ref None in
      let (_ : unit -> unit) =
        Spin.Dispatcher.install ev ~label:"ctl" ~cost:(us 1) (fun _ ->
            match !swap_req with
            | None -> ()
            | Some slot -> (
                swap_req := None;
                match Hashtbl.find_opt links slot with
                | None -> ()
                | Some (l, _) -> (
                    let inst = fresh slot in
                    match
                      Spin.Linker.replace ~disp:d ~domain:dom l
                        (ext ~slot ~inst)
                    with
                    | Ok (nl, _) -> Hashtbl.replace links slot (nl, inst)
                    | Error _ -> failwith "churn: replace failed")))
      in
      let model_replace slot inst =
        installed :=
          List.filter (fun (s, _) -> s <> slot) !installed @ [ (slot, inst) ]
      in
      List.iter
        (fun op ->
          match op with
          | CInstall slot ->
              if not (Hashtbl.mem links slot) then begin
                let inst = fresh slot in
                (match Spin.Linker.link ~domain:dom (ext ~slot ~inst) with
                | Ok l -> Hashtbl.replace links slot (l, inst)
                | Error _ -> failwith "churn: link failed");
                installed := !installed @ [ (slot, inst) ]
              end
          | CUninstall slot -> (
              match Hashtbl.find_opt links slot with
              | None -> ()
              | Some (l, _) ->
                  Spin.Linker.unlink l;
                  Hashtbl.remove links slot;
                  installed := List.filter (fun (s, _) -> s <> slot) !installed
              )
          | CReplace slot -> (
              (* quiescent replace: no deliveries queued *)
              match Hashtbl.find_opt links slot with
              | None -> ()
              | Some (l, _) -> (
                  let inst = fresh slot in
                  match
                    Spin.Linker.replace ~disp:d ~domain:dom l (ext ~slot ~inst)
                  with
                  | Ok (nl, sw) ->
                      Hashtbl.replace links slot (nl, inst);
                      if sw.Spin.Linker.swap_inflight <> 0 then
                        failwith "churn: quiescent replace saw inflight";
                      model_replace slot inst
                  | Error _ -> failwith "churn: replace failed"))
          | CRaise ->
              let p = !payload in
              incr payload;
              expect :=
                !expect @ List.map (fun (s, i) -> (s, i, p)) !installed;
              Spin.Dispatcher.raise ev p;
              Sim.Engine.run e
          | CRaiseSwapMid slot ->
              let p = !payload in
              incr payload;
              (* this payload's deliveries are queued before the control
                 body swaps: the OLD instance gets it *)
              expect :=
                !expect @ List.map (fun (s, i) -> (s, i, p)) !installed;
              if Hashtbl.mem links slot then begin
                swap_req := Some slot;
                model_replace slot next_inst.(slot)
              end;
              Spin.Dispatcher.raise ev p;
              Sim.Engine.run e;
              if Spin.Dispatcher.swap_inflight d <> 0 then
                failwith "churn: inflight did not drain")
        ops;
      List.rev !log = !expect && Spin.Dispatcher.swap_inflight d = 0)

(* ---- Hot-swap churn across domains ------------------------------------ *)

let par_swap_churn_equivalence () =
  let plan = Par.Rss.make ~seed:11 ~flows:64 ~pkts_per_flow:10 () in
  let oracle = Par.Node.run ~domains:1 ~flowcache:false ~swap_every:16 plan in
  let s = Par.Node.run ~domains:2 ~flowcache:false ~swap_every:16 plan in
  Alcotest.(check bool) "both runs actually swapped" true
    (oracle.Par.Node.swaps > 0 && s.Par.Node.swaps > 0);
  List.iter2
    (fun (name, expected) (_, got) ->
      Alcotest.(check int) ("churn equivalence: " ^ name) expected got)
    (Par.Node.equiv_counters oracle)
    (Par.Node.equiv_counters s)

(* ---- End-to-end experiment -------------------------------------------- *)

let lifecycle_experiment_ok () =
  let o =
    Experiments.Lifecycle.run_once ~count:40 ~burst:4 ~swap_period:7 ~qcount:6
      ()
  in
  if not (Experiments.Lifecycle.outcome_ok o) then
    Alcotest.failf "lifecycle experiment violated an invariant: %a"
      Experiments.Lifecycle.pp_outcome o

let suite =
  [
    ( "lifecycle.verifier",
      [
        tc "infer folds the op list" verifier_infer;
        tc "admit gates each resource" verifier_admit;
        tc "event policy rejects at install" install_rejected_by_policy;
        tc "link policy rejects before init" link_rejected_by_policy;
      ] );
    ( "lifecycle.ledger",
      [
        tc "crash vs termination accounting" eph_crash_counted_distinctly;
        tc "async exceptions propagate" async_exceptions_propagate;
        tc "certified bound is the runtime budget"
          certified_budget_is_runtime_budget;
        tc "zero ephemeral budget" ephemeral_zero_budget;
        tc "reinstall splits the ledger by generation"
          ledger_generations_split;
      ] );
    ( "lifecycle.quarantine",
      [
        tc "hog evicted inside the window" quarantine_evicts_hog;
        tc "idle across windows forgiven" quarantine_window_forgives_idle;
        tc "termination thrash evicted" quarantine_on_terminations;
      ] );
    ( "lifecycle.swap",
      [
        tc "mid-delivery replace drops nothing" swap_mid_delivery_zero_drop;
        tc "failed replacement leaves the old running"
          swap_abort_on_link_failure;
        prop churn_preserves_delivery;
        tc "2-domain churn matches the oracle" par_swap_churn_equivalence;
        tc "experiment invariants" lifecycle_experiment_ok;
      ] );
  ]
