(* Tests for the device/host simulation substrate. *)

let tc name f = Alcotest.test_case name `Quick f
let us = Sim.Stime.us

let mk_pair ?(params = Netsim.Costs.loopback ()) () =
  let engine = Sim.Engine.create () in
  let a, b =
    Netsim.Network.pair engine params
      ~a:("a", Proto.Ipaddr.v 10 0 0 1)
      ~b:("b", Proto.Ipaddr.v 10 0 0 2)
  in
  (engine, a, b)

(* ---- Dev -------------------------------------------------------------- *)

let dev_delivers () =
  let engine, a, b = mk_pair () in
  let got = ref [] in
  Netsim.Dev.set_rx b.Netsim.Network.dev (fun pkt ->
      got := Mbuf.to_string pkt :: !got);
  Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.of_string "frame-1");
  Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.of_string "frame-2");
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "in order" [ "frame-1"; "frame-2" ]
    (List.rev !got);
  let c = Netsim.Dev.counters a.Netsim.Network.dev in
  Alcotest.(check int) "tx count" 2 c.Netsim.Dev.tx_packets;
  Alcotest.(check int) "tx bytes" 14 c.Netsim.Dev.tx_bytes;
  let cb = Netsim.Dev.counters b.Netsim.Network.dev in
  Alcotest.(check int) "rx count" 2 cb.Netsim.Dev.rx_packets

let dev_transmit_takes_ownership () =
  let engine, a, b = mk_pair () in
  let got = ref None in
  Netsim.Dev.set_rx b.Netsim.Network.dev (fun pkt -> got := Some pkt);
  let pkt = Mbuf.of_string "orig" in
  Netsim.Dev.transmit a.Netsim.Network.dev pkt;
  (* the driver consumed the frame: the sender's handle is empty, so a
     post-transmit scribble cannot reach bytes on the wire *)
  Alcotest.(check bool) "sender handle emptied" true (Mbuf.is_empty pkt);
  View.fill (Mbuf.view pkt) 'X';
  Sim.Engine.run engine;
  match !got with
  | Some p -> Alcotest.(check string) "unaffected" "orig" (Mbuf.to_string p)
  | None -> Alcotest.fail "nothing received"

let dev_no_handler_drops () =
  let engine, a, b = mk_pair () in
  Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.of_string "frame");
  Sim.Engine.run engine;
  Alcotest.(check int) "rx drop counted" 1
    (Netsim.Dev.counters b.Netsim.Network.dev).Netsim.Dev.rx_drops

let dev_mtu_enforced () =
  let engine, a, _b = mk_pair ~params:(Netsim.Costs.ethernet ()) () in
  ignore engine;
  let big = Mbuf.alloc 1600 in
  match Netsim.Dev.transmit a.Netsim.Network.dev big with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "oversized frame accepted"

let dev_wire_serializes () =
  (* Ethernet at 10 Mb/s: two 1000-byte frames cannot arrive closer than
     their wire time apart. *)
  let engine, a, b = mk_pair ~params:(Netsim.Costs.ethernet ()) () in
  let arrivals = ref [] in
  Netsim.Dev.set_rx b.Netsim.Network.dev (fun _ ->
      arrivals := Sim.Engine.now engine :: !arrivals);
  Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.alloc 1000);
  Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.alloc 1000);
  Sim.Engine.run engine;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
      let gap = Sim.Stime.to_us (Sim.Stime.sub t2 t1) in
      let wire =
        Sim.Stime.to_us (Netsim.Dev.wire_time a.Netsim.Network.dev 1000)
      in
      Alcotest.(check bool)
        (Printf.sprintf "gap %.1f >= wire %.1f" gap wire)
        true (gap >= wire -. 0.001)
  | _ -> Alcotest.fail "expected two arrivals"

let dev_shared_medium_contends () =
  (* On the half-duplex Ethernet, simultaneous opposite-direction frames
     serialize; on the full-duplex T3 they do not. *)
  let run params =
    let engine, a, b = mk_pair ~params () in
    let last = ref Sim.Stime.zero in
    Netsim.Dev.set_rx b.Netsim.Network.dev (fun _ -> last := Sim.Engine.now engine);
    Netsim.Dev.set_rx a.Netsim.Network.dev (fun _ -> last := Sim.Engine.now engine);
    Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.alloc 1000);
    Netsim.Dev.transmit b.Netsim.Network.dev (Mbuf.alloc 1000);
    Sim.Engine.run engine;
    Sim.Stime.to_us !last
  in
  let eth = run (Netsim.Costs.ethernet ()) in
  let t3 = run (Netsim.Costs.t3 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "ethernet (%.0f) serializes, t3 (%.0f) does not" eth t3)
    true (eth > 1.8 *. t3)

let dev_pio_charges_cpu () =
  let engine, a, b = mk_pair ~params:(Netsim.Costs.atm ()) () in
  Netsim.Dev.set_rx b.Netsim.Network.dev (fun _ -> ());
  let cpu_a = Netsim.Host.cpu a.Netsim.Network.host in
  let before = Sim.Stime.to_ns (Sim.Cpu.busy_time cpu_a) in
  Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.alloc 1000);
  Sim.Engine.run engine;
  let tx_cost = Sim.Stime.to_ns (Sim.Cpu.busy_time cpu_a) - before in
  (* 32us fixed + 1000 * 150ns PIO *)
  Alcotest.(check int) "tx charged fixed+PIO" 182_000 tx_cost;
  let cpu_b = Netsim.Host.cpu b.Netsim.Network.host in
  Alcotest.(check int) "rx charged fixed+PIO" 195_000
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu_b))

let dev_txq_overflow () =
  let params = { (Netsim.Costs.ethernet ()) with Netsim.Costs.txq_limit = 2 } in
  let engine, a, b = mk_pair ~params () in
  Netsim.Dev.set_rx b.Netsim.Network.dev (fun _ -> ());
  for _ = 1 to 10 do
    Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.alloc 1000)
  done;
  Sim.Engine.run engine;
  let c = Netsim.Dev.counters a.Netsim.Network.dev in
  Alcotest.(check bool) "drops happened" true (c.Netsim.Dev.tx_drops > 0);
  Alcotest.(check int) "sent + dropped = offered" 10
    (c.Netsim.Dev.tx_packets + c.Netsim.Dev.tx_drops)

(* ---- Disk -------------------------------------------------------------- *)

let disk_read () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let disk =
    Netsim.Disk.create ~bw_bytes_per_s:10_000_000 ~access:(us 100) engine ~cpu
      ~costs:Netsim.Costs.default
  in
  let got = ref None in
  Netsim.Disk.read disk ~len:10_000 (fun data ->
      got := Some (String.length data, Sim.Engine.now engine));
  Sim.Engine.run engine;
  match !got with
  | Some (len, t) ->
      Alcotest.(check int) "data length" 10_000 len;
      (* dma setup 20us (cpu) -> access 100us + transfer 1000us + intr 15us *)
      Alcotest.(check bool)
        (Printf.sprintf "latency sensible (%.0fus)" (Sim.Stime.to_us t))
        true
        (Sim.Stime.to_us t >= 1120. && Sim.Stime.to_us t <= 1160.);
      Alcotest.(check int) "reads" 1 (Netsim.Disk.reads disk)
  | None -> Alcotest.fail "no completion"

let disk_serializes () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let disk =
    Netsim.Disk.create ~bw_bytes_per_s:10_000_000 ~access:(us 100) engine ~cpu
      ~costs:Netsim.Costs.default
  in
  let times = ref [] in
  Netsim.Disk.read disk ~len:10_000 (fun _ ->
      times := Sim.Engine.now engine :: !times);
  Netsim.Disk.read disk ~len:10_000 (fun _ ->
      times := Sim.Engine.now engine :: !times);
  Sim.Engine.run engine;
  match List.rev !times with
  | [ t1; t2 ] ->
      Alcotest.(check bool) "second waits for first" true
        (Sim.Stime.to_us (Sim.Stime.sub t2 t1) >= 1000.)
  | _ -> Alcotest.fail "expected two completions"

(* ---- Framebuffer ------------------------------------------------------- *)

let framebuffer_cost () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let fb = Netsim.Framebuffer.create ~cpu ~costs:Netsim.Costs.default in
  let done_at = ref Sim.Stime.zero in
  Netsim.Framebuffer.write fb ~len:10_000 (fun () ->
      done_at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  (* 10000 bytes * 250 ns = 2.5ms *)
  Alcotest.(check int) "slow device memory" 2_500_000 (Sim.Stime.to_ns !done_at);
  Alcotest.(check int) "bytes" 10_000 (Netsim.Framebuffer.bytes_written fb);
  Alcotest.(check int) "frames" 1 (Netsim.Framebuffer.frames fb)

(* ---- Host / Network ----------------------------------------------------- *)

let host_devices () =
  let engine = Sim.Engine.create () in
  let h = Netsim.Host.create engine ~name:"h" ~ip:(Proto.Ipaddr.v 10 0 0 1) in
  let d1 = Netsim.Host.add_device h (Netsim.Costs.ethernet ()) in
  let d2 = Netsim.Host.add_device h (Netsim.Costs.t3 ()) in
  Alcotest.(check int) "two devices" 2 (List.length (Netsim.Host.devices h));
  Alcotest.(check bool) "distinct macs" false
    (Proto.Ether.Mac.equal (Netsim.Dev.mac d1) (Netsim.Dev.mac d2))

let network_line3 () =
  let engine = Sim.Engine.create () in
  let c, (m1, m2), s =
    Netsim.Network.line3 engine (Netsim.Costs.ethernet ())
      ~client:("c", Proto.Ipaddr.v 10 0 1 2)
      ~middle:("m", Proto.Ipaddr.v 10 0 1 1)
      ~server:("s", Proto.Ipaddr.v 10 0 2 2)
  in
  Alcotest.(check bool) "middle is one host with two devices" true
    (m1.Netsim.Network.host == m2.Netsim.Network.host);
  Alcotest.(check int) "middle devices" 2
    (List.length (Netsim.Host.devices m1.Netsim.Network.host));
  (* client can reach middle's first device *)
  let got = ref 0 in
  Netsim.Dev.set_rx m1.Netsim.Network.dev (fun _ -> incr got);
  Netsim.Dev.set_rx s.Netsim.Network.dev (fun _ -> incr got);
  Netsim.Dev.transmit c.Netsim.Network.dev (Mbuf.of_string "to-middle");
  Netsim.Dev.transmit m2.Netsim.Network.dev (Mbuf.of_string "to-server");
  Sim.Engine.run engine;
  Alcotest.(check int) "both segments deliver" 2 !got

let suite =
  [
    ( "netsim.dev",
      [
        tc "delivers in order" dev_delivers;
        tc "transmit takes ownership" dev_transmit_takes_ownership;
        tc "no handler -> drop" dev_no_handler_drops;
        tc "mtu enforced" dev_mtu_enforced;
        tc "wire serializes" dev_wire_serializes;
        tc "shared medium contends" dev_shared_medium_contends;
        tc "PIO charges the CPU" dev_pio_charges_cpu;
        tc "txq overflow drops" dev_txq_overflow;
      ] );
    ( "netsim.disk",
      [ tc "read latency and data" disk_read; tc "serializes requests" disk_serializes ] );
    ("netsim.framebuffer", [ tc "write cost" framebuffer_cost ]);
    ( "netsim.topology",
      [ tc "host devices" host_devices; tc "line3" network_line3 ] );
  ]

(* ---- cost-model arithmetic ----------------------------------------------- *)

let frame_overheads () =
  let eth = Netsim.Costs.ethernet () in
  (* 8-byte UDP -> 50-byte frame -> padded to 60 + FCS/preamble/IFG *)
  Alcotest.(check int) "ethernet pads short frames" (60 + 24)
    (eth.Netsim.Costs.frame_overhead 50);
  Alcotest.(check int) "ethernet big frame" (1514 + 24)
    (eth.Netsim.Costs.frame_overhead 1514);
  let atm = Netsim.Costs.atm () in
  (* 40 bytes + 8 AAL5 = 48 -> exactly one 53-byte cell *)
  Alcotest.(check int) "one cell" 53 (atm.Netsim.Costs.frame_overhead 40);
  Alcotest.(check int) "two cells" 106 (atm.Netsim.Costs.frame_overhead 41);
  Alcotest.(check int) "1514 -> 32 cells" (32 * 53)
    (atm.Netsim.Costs.frame_overhead 1514);
  let t3 = Netsim.Costs.t3 () in
  Alcotest.(check int) "t3 small overhead" 104 (t3.Netsim.Costs.frame_overhead 100)

let per_byte_cost () =
  Alcotest.(check int) "150ns/B over 1000B = 150us" 150_000
    (Sim.Stime.to_ns (Netsim.Costs.per_byte 150. 1000));
  Alcotest.(check int) "zero" 0 (Sim.Stime.to_ns (Netsim.Costs.per_byte 0. 12345))

let wire_time_known () =
  let engine = Sim.Engine.create () in
  let a, _b =
    Netsim.Network.pair engine (Netsim.Costs.ethernet ())
      ~a:("a", Proto.Ipaddr.v 10 0 0 1)
      ~b:("b", Proto.Ipaddr.v 10 0 0 2)
  in
  (* 1514+24 bytes at 10 Mb/s = 1230.4 us *)
  Alcotest.(check (float 0.1)) "full frame wire time" 1230.4
    (Sim.Stime.to_us (Netsim.Dev.wire_time a.Netsim.Network.dev 1514))

let raw_rtt_analytic () =
  (* the analytic driver-to-driver figure must sit below the measured
     full-stack RTT and above pure wire time *)
  let params = Netsim.Costs.ethernet () in
  let raw = Experiments.Common.raw_device_rtt params ~len:64 in
  Alcotest.(check bool) (Printf.sprintf "sane raw rtt (%.0f)" raw) true
    (raw > 2. *. 57.6 && raw < 600.)

let suite =
  suite
  @ [
      ( "netsim.costs",
        [
          tc "frame overheads" frame_overheads;
          tc "per-byte costs" per_byte_cost;
          tc "wire time" wire_time_known;
          tc "raw rtt analytic" raw_rtt_analytic;
        ] );
    ]
