(* The observability layer: histograms, the registry, trace rings, span
   emission from the dispatcher, and the zero-cost disabled path. *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t
let us = Sim.Stime.us

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* ---- Histogram ------------------------------------------------------------ *)

(* The design bound: every value lands in a bucket whose midpoint is
   within 2^-(sub_bits+1) ≈ 3.1% of it (plus 1 absolute for the integer
   midpoint of tiny buckets). *)
let hist_bucket_error =
  QCheck.Test.make ~name:"bucket midpoint within the relative error bound"
    QCheck.(int_bound 1_000_000_000)
    (fun v ->
      let r = Observe.Histogram.value_of (Observe.Histogram.bucket_of v) in
      abs (r - v) <= 1 + (v / 30))

let hist_vs_series =
  QCheck.Test.make ~name:"quantiles track Series within the error bound"
    QCheck.(list_of_size (Gen.int_range 50 300) (int_bound 5_000_000))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = Observe.Histogram.create () in
      let s = Sim.Stats.Series.create () in
      List.iter
        (fun v ->
          Observe.Histogram.record h v;
          Sim.Stats.Series.add s (float_of_int v))
        samples;
      List.for_all
        (fun p ->
          let exact = Sim.Stats.Series.percentile s p in
          let approx = float_of_int (Observe.Histogram.percentile h p) in
          (* rank conventions differ by at most one sample; allow the
             bucket error plus one sample-gap of slack *)
          abs_float (approx -. exact) <= 2. +. (0.07 *. (exact +. approx)))
        [ 50.; 90.; 99. ])

let hist_exact_counts () =
  let h = Observe.Histogram.create () in
  List.iter (Observe.Histogram.record h) [ 3; 14; 15; 9_265; 358_979 ];
  Alcotest.(check int) "count" 5 (Observe.Histogram.count h);
  Alcotest.(check int) "sum" 368_276 (Observe.Histogram.sum h);
  Alcotest.(check int) "min" 3 (Observe.Histogram.min_value h);
  Alcotest.(check int) "max" 358_979 (Observe.Histogram.max_value h);
  (* values below [sub] are recorded exactly *)
  Alcotest.(check int) "small values exact" 3
    (Observe.Histogram.percentile h 1.);
  Observe.Histogram.reset h;
  Alcotest.(check bool) "reset empties" true (Observe.Histogram.is_empty h)

let hist_merge () =
  let a = Observe.Histogram.create () and b = Observe.Histogram.create () in
  List.iter (Observe.Histogram.record a) [ 10; 20 ];
  List.iter (Observe.Histogram.record b) [ 30_000 ];
  Observe.Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 3 (Observe.Histogram.count a);
  Alcotest.(check int) "merged max" 30_000 (Observe.Histogram.max_value a)

(* ---- Registry ------------------------------------------------------------- *)

let registry_find_or_create () =
  let r = Observe.Registry.create ~name:"t" () in
  let c1 = Observe.Registry.counter r "a.b" in
  incr c1;
  let c2 = Observe.Registry.counter r "a.b" in
  Alcotest.(check bool) "same ref" true (c1 == c2);
  Alcotest.(check int) "value visible through both" 1 !c2;
  let h1 = Observe.Registry.histogram r "a.lat" in
  Alcotest.(check bool) "same histogram" true
    (h1 == Observe.Registry.histogram r "a.lat");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Registry t: a.b is a counter, not a histogram")
    (fun () -> ignore (Observe.Registry.histogram r "a.b"))

let registry_reset_and_gauges () =
  let r = Observe.Registry.create ~name:"t" () in
  let c = Observe.Registry.counter r "n" in
  c := 42;
  let level = ref 7 in
  Observe.Registry.gauge r "depth" (fun () -> !level);
  Observe.Histogram.record (Observe.Registry.histogram r "lat") 100;
  Observe.Registry.reset r;
  Alcotest.(check int) "counter zeroed" 0 !c;
  Alcotest.(check bool) "histogram zeroed" true
    (Observe.Histogram.is_empty (Observe.Registry.histogram r "lat"));
  level := 9;
  (match Observe.Registry.snapshot r with
  | l -> (
      match List.assoc "depth" l with
      | Observe.Registry.Level v ->
          Alcotest.(check int) "gauge samples live state" 9 v
      | _ -> Alcotest.fail "depth should be a gauge"));
  let names = List.map fst (Observe.Registry.snapshot r) in
  Alcotest.(check (list string)) "snapshot sorted" [ "depth"; "lat"; "n" ] names

let registry_json () =
  let r = Observe.Registry.create ~name:"t" () in
  Observe.Registry.counter r {|weird"name|} := 3;
  let j = Observe.Registry.to_json r in
  Alcotest.(check bool) "escapes quotes" true (contains j {|weird\"name|});
  Alcotest.(check bool) "value present" true (contains j ": 3")

(* ---- Trace ring ------------------------------------------------------------ *)

let mk_span at event = { Observe.Trace.at_ns = at; event }
let msg i = Observe.Trace.Message { scope = "t"; text = string_of_int i }

let ring_wraps () =
  let ring = Observe.Trace.Ring.create ~capacity:4 () in
  for i = 1 to 7 do
    Observe.Trace.Ring.push ring (mk_span i (msg i))
  done;
  Alcotest.(check int) "length capped" 4 (Observe.Trace.Ring.length ring);
  Alcotest.(check int) "overwrites counted" 3
    (Observe.Trace.Ring.dropped ring);
  let ats =
    List.map (fun s -> s.Observe.Trace.at_ns) (Observe.Trace.Ring.to_list ring)
  in
  Alcotest.(check (list int)) "oldest first" [ 4; 5; 6; 7 ] ats;
  Observe.Trace.Ring.clear ring;
  Alcotest.(check int) "clear" 0 (Observe.Trace.Ring.length ring)

(* ---- Zero-cost disabled tracing -------------------------------------------- *)

(* The property the satellite fix is about: when tracing is off, [emit]'s
   arguments are consumed without being rendered — a %a pretty-printer in
   the argument list is never invoked. *)
let trace_disabled_zero_cost =
  QCheck.Test.make ~name:"disabled emit never invokes %a printers"
    QCheck.(int_bound 1_000_000)
    (fun v ->
      let calls = ref 0 in
      let pp ppf x =
        incr calls;
        Fmt.int ppf x
      in
      Sim.Trace.enabled := false;
      Sim.Trace.set_sink Observe.Trace.Null;
      Sim.Trace.emit (us 1) "v=%a" pp v;
      let off_calls = !calls in
      let seen = ref 0 in
      Sim.Trace.set_sink (Observe.Trace.Fn (fun _ -> incr seen));
      Sim.Trace.emit (us 1) "v=%a" pp v;
      Sim.Trace.set_sink Observe.Trace.Null;
      off_calls = 0 && !calls = 1 && !seen = 1)

(* ---- Dispatcher spans ------------------------------------------------------- *)

(* The acceptance scenario: a keyed UDP delivery crosses ether -> ip ->
   udp; the ring must contain the full span path in order, and each
   layer's run histogram must agree with its event's raise count. *)
let span_path_reconstruction () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let kernel_b = Netsim.Host.kernel (Plexus.Stack.host p.Experiments.Common.b) in
  let ring = Observe.Trace.Ring.create ~capacity:4096 () in
  Observe.Trace.set_sink (Spin.Kernel.trace kernel_b) (Observe.Trace.Ring ring);
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let bind_exn udp ~owner ~port =
    match Plexus.Udp_mgr.bind udp ~owner ~port with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let delivered = ref 0 in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun _ -> incr delivered)
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  let sends = 5 in
  for i = 1 to sends do
    Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 7)
      (Printf.sprintf "m%d" i)
  done;
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "all datagrams delivered" sends !delivered;
  let spans = Observe.Trace.Ring.to_list ring in
  Alcotest.(check int) "nothing overwritten" 0 (Observe.Trace.Ring.dropped ring);
  let is_ether e = contains e "ethernet" in
  (* one packet's path, as (predicate, description) subsequence steps *)
  let open Observe.Trace in
  let steps =
    [
      ( "raise ether",
        function Raise r -> is_ether r.event | _ -> false );
      ( "guard hit ip@ether",
        function
        | Guard_eval g -> is_ether g.event && g.label = "ip" && g.hit
        | _ -> false );
      ( "run ip@ether",
        function
        | Handler_run h -> is_ether h.event && h.label = "ip" | _ -> false );
      ("raise ip", function Raise r -> r.event = "ip.PacketRecv" | _ -> false);
      ( "index lookup ip",
        function
        | Index_lookup i -> i.event = "ip.PacketRecv" | _ -> false );
      ( "guard hit udp@ip",
        function
        | Guard_eval g -> g.event = "ip.PacketRecv" && g.label = "udp" && g.hit
        | _ -> false );
      ( "run udp@ip",
        function
        | Handler_run h -> h.event = "ip.PacketRecv" && h.label = "udp"
        | _ -> false );
      ( "raise udp",
        function
        | Raise r -> r.event = "udp.PacketRecv" && r.indexed | _ -> false );
      ( "index lookup udp",
        function
        | Index_lookup i -> i.event = "udp.PacketRecv" | _ -> false );
      ( "guard hit srv@udp",
        function
        | Guard_eval g ->
            g.event = "udp.PacketRecv" && g.label = "srv" && g.hit
        | _ -> false );
      ( "run srv@udp",
        function
        | Handler_run h -> h.event = "udp.PacketRecv" && h.label = "srv"
        | _ -> false );
    ]
  in
  let rec walk steps spans =
    match steps with
    | [] -> ()
    | (desc, pred) :: rest -> (
        match spans with
        | [] -> Alcotest.fail ("span path incomplete: missing " ^ desc)
        | s :: tail ->
            if pred s.Observe.Trace.event then walk rest tail
            else walk steps tail)
  in
  walk steps spans;
  (* per-handler histogram counts must match the raise counts *)
  let reg = Spin.Kernel.registry kernel_b in
  let counter name =
    match Observe.Registry.find reg name with
    | Some (Observe.Registry.Counter c) -> !c
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  let hist_n name =
    match Observe.Registry.find reg name with
    | Some (Observe.Registry.Hist h) -> Observe.Histogram.count h
    | _ -> Alcotest.fail ("missing histogram " ^ name)
  in
  Alcotest.(check int) "udp raises" sends (counter "spin.udp.PacketRecv.raises");
  Alcotest.(check int) "srv runs = udp raises" sends
    (hist_n "spin.udp.PacketRecv.srv.run_ns");
  Alcotest.(check int) "udp runs = ip raises" sends
    (hist_n "spin.ip.PacketRecv.udp.run_ns");
  Alcotest.(check int) "udp raises all indexed" sends
    (counter "spin.udp.PacketRecv.indexed_raises");
  (* durations in the spans must equal what the histograms recorded *)
  let span_runs =
    List.filter_map
      (fun s ->
        match s.Observe.Trace.event with
        | Handler_run h when h.event = "udp.PacketRecv" && h.label = "srv" ->
            Some h.duration_ns
        | _ -> None)
      spans
  in
  Alcotest.(check int) "one run span per datagram" sends (List.length span_runs);
  List.iter
    (fun d -> Alcotest.(check bool) "positive duration" true (d > 0))
    span_runs

(* A budget-starved EPHEMERAL handler must surface as a [Terminated]
   span (and count under spin.eph.terminated). *)
let ephemeral_terminated_span () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let registry = Observe.Registry.create ~name:"t" () in
  let trace = Observe.Trace.create () in
  let ring = Observe.Trace.Ring.create () in
  Observe.Trace.set_sink trace (Observe.Trace.Ring ring);
  let d =
    Spin.Dispatcher.create ~registry ~trace ~cpu
      ~costs:Spin.Dispatcher.default_costs ()
  in
  let ev = Spin.Dispatcher.event d "e" in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"eph" ~budget:(us 7) (fun () ->
        List.init 4 (fun _ ->
            Spin.Ephemeral.work ~label:"w" ~cost:(us 5) ignore))
  in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run engine;
  let term =
    List.filter_map
      (fun s ->
        match s.Observe.Trace.event with
        | Observe.Trace.Terminated { label; committed; total; _ } ->
            Some (label, committed, total)
        | _ -> None)
      (Observe.Trace.Ring.to_list ring)
  in
  match term with
  | [ (label, committed, total) ] ->
      Alcotest.(check string) "labelled" "eph" label;
      Alcotest.(check int) "committed prefix" 1 committed;
      Alcotest.(check int) "of total" 4 total;
      Alcotest.(check int) "terminated counted" 1
        !(Observe.Registry.counter registry "spin.eph.terminated");
      Alcotest.(check int) "dispatcher agrees" 1 (Spin.Dispatcher.terminations d)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 Terminated span, got %d" (List.length l))

(* A commit within budget emits [Ephemeral_commit] instead. *)
let ephemeral_commit_span () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let trace = Observe.Trace.create () in
  let ring = Observe.Trace.Ring.create () in
  Observe.Trace.set_sink trace (Observe.Trace.Ring ring);
  let d =
    Spin.Dispatcher.create ~trace ~cpu ~costs:Spin.Dispatcher.default_costs ()
  in
  let ev = Spin.Dispatcher.event d "e" in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"eph" ~budget:(us 50) (fun () ->
        List.init 3 (fun _ ->
            Spin.Ephemeral.work ~label:"w" ~cost:(us 5) ignore))
  in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run engine;
  let commits =
    List.filter_map
      (fun s ->
        match s.Observe.Trace.event with
        | Observe.Trace.Ephemeral_commit { committed; duration_ns; _ } ->
            Some (committed, duration_ns)
        | _ -> None)
      (Observe.Trace.Ring.to_list ring)
  in
  match commits with
  | [ (committed, duration_ns) ] ->
      Alcotest.(check int) "all actions committed" 3 committed;
      Alcotest.(check int) "duration is the consumed budget" 15_000 duration_ns
  | l -> Alcotest.fail (Printf.sprintf "expected 1 commit span, got %d" (List.length l))

(* ---- Introspection ---------------------------------------------------------- *)

let dispatcher_dump () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let d =
    Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs ()
  in
  let ev = Spin.Dispatcher.event d "e" in
  Spin.Dispatcher.set_keyfn ev (fun x -> [ x ]);
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~label:"keyed" ~key:3
      ~guard:(fun x -> x = 3)
      ~cost:Sim.Stime.zero
      (fun _ -> ())
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:Sim.Stime.zero (fun _ -> ())
  in
  Spin.Dispatcher.raise ev 3;
  Sim.Engine.run engine;
  match Spin.Dispatcher.dump d with
  | [ ei ] ->
      Alcotest.(check string) "event name" "e" ei.Spin.Dispatcher.ei_name;
      Alcotest.(check bool) "indexed" true ei.Spin.Dispatcher.ei_indexed;
      (match ei.Spin.Dispatcher.ei_handlers with
      | [ keyed; linear ] ->
          Alcotest.(check string) "label" "keyed" keyed.Spin.Dispatcher.hi_label;
          Alcotest.(check (option int)) "key" (Some 3) keyed.Spin.Dispatcher.hi_key;
          Alcotest.(check int) "keyed hit" 1 keyed.Spin.Dispatcher.hi_guard_hits;
          Alcotest.(check int) "keyed ran" 1 keyed.Spin.Dispatcher.hi_runs;
          Alcotest.(check string) "default label" "h1"
            linear.Spin.Dispatcher.hi_label;
          Alcotest.(check (option int)) "linear key" None
            linear.Spin.Dispatcher.hi_key;
          Alcotest.(check int) "linear ran too" 1 linear.Spin.Dispatcher.hi_runs
      | l -> Alcotest.fail (Printf.sprintf "expected 2 handlers, got %d" (List.length l)))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length l))

let kernel_introspect () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let k = Netsim.Host.kernel (Plexus.Stack.host p.Experiments.Common.a) in
  let s = Spin.Kernel.introspect k in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("introspect mentions " ^ affix) true
        (contains s affix))
    [ "ip.PacketRecv"; "udp"; "tcp"; "arp" ]

(* Metrics compatibility shim: the refs are the registry's counters. *)
let metrics_shim () =
  Metrics.reset ();
  Metrics.count_copy 100;
  (match Observe.Registry.find Metrics.registry "packet.copies" with
  | Some (Observe.Registry.Counter c) ->
      Alcotest.(check bool) "same cell" true (c == Metrics.copies);
      Alcotest.(check int) "count visible" 1 !c
  | _ -> Alcotest.fail "packet.copies not registered");
  Metrics.reset ();
  Alcotest.(check int) "reset via shim zeroes registry" 0 !(Metrics.copies)

let suite =
  [
    ( "observe.histogram",
      [
        prop hist_bucket_error;
        prop hist_vs_series;
        tc "exact bookkeeping" hist_exact_counts;
        tc "merge" hist_merge;
      ] );
    ( "observe.registry",
      [
        tc "find-or-create and kind safety" registry_find_or_create;
        tc "reset and gauges" registry_reset_and_gauges;
        tc "json escaping" registry_json;
        tc "metrics shim" metrics_shim;
      ] );
    ( "observe.trace",
      [ tc "ring wraps" ring_wraps; prop trace_disabled_zero_cost ] );
    ( "observe.spans",
      [
        tc "udp span path reconstruction" span_path_reconstruction;
        tc "ephemeral termination span" ephemeral_terminated_span;
        tc "ephemeral commit span" ephemeral_commit_span;
      ] );
    ( "observe.introspection",
      [ tc "dispatcher dump" dispatcher_dump; tc "kernel introspect" kernel_introspect ] );
  ]
