(* The observability layer: histograms, the registry, trace rings, span
   emission from the dispatcher, and the zero-cost disabled path. *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t
let us = Sim.Stime.us

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* ---- Histogram ------------------------------------------------------------ *)

(* The design bound: every value lands in a bucket whose midpoint is
   within 2^-(sub_bits+1) ≈ 3.1% of it (plus 1 absolute for the integer
   midpoint of tiny buckets). *)
let hist_bucket_error =
  QCheck.Test.make ~name:"bucket midpoint within the relative error bound"
    QCheck.(int_bound 1_000_000_000)
    (fun v ->
      let r = Observe.Histogram.value_of (Observe.Histogram.bucket_of v) in
      abs (r - v) <= 1 + (v / 30))

let hist_vs_series =
  QCheck.Test.make ~name:"quantiles track Series within the error bound"
    QCheck.(list_of_size (Gen.int_range 50 300) (int_bound 5_000_000))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = Observe.Histogram.create () in
      let s = Sim.Stats.Series.create () in
      List.iter
        (fun v ->
          Observe.Histogram.record h v;
          Sim.Stats.Series.add s (float_of_int v))
        samples;
      List.for_all
        (fun p ->
          let exact = Sim.Stats.Series.percentile s p in
          let approx = float_of_int (Observe.Histogram.percentile h p) in
          (* rank conventions differ by at most one sample; allow the
             bucket error plus one sample-gap of slack *)
          abs_float (approx -. exact) <= 2. +. (0.07 *. (exact +. approx)))
        [ 50.; 90.; 99. ])

let hist_exact_counts () =
  let h = Observe.Histogram.create () in
  List.iter (Observe.Histogram.record h) [ 3; 14; 15; 9_265; 358_979 ];
  Alcotest.(check int) "count" 5 (Observe.Histogram.count h);
  Alcotest.(check int) "sum" 368_276 (Observe.Histogram.sum h);
  Alcotest.(check int) "min" 3 (Observe.Histogram.min_value h);
  Alcotest.(check int) "max" 358_979 (Observe.Histogram.max_value h);
  (* values below [sub] are recorded exactly *)
  Alcotest.(check int) "small values exact" 3
    (Observe.Histogram.percentile h 1.);
  Observe.Histogram.reset h;
  Alcotest.(check bool) "reset empties" true (Observe.Histogram.is_empty h)

let hist_merge () =
  let a = Observe.Histogram.create () and b = Observe.Histogram.create () in
  List.iter (Observe.Histogram.record a) [ 10; 20 ];
  List.iter (Observe.Histogram.record b) [ 30_000 ];
  Observe.Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 3 (Observe.Histogram.count a);
  Alcotest.(check int) "merged max" 30_000 (Observe.Histogram.max_value a)

(* ---- Registry ------------------------------------------------------------- *)

let registry_find_or_create () =
  let r = Observe.Registry.create ~name:"t" () in
  let c1 = Observe.Registry.counter r "a.b" in
  incr c1;
  let c2 = Observe.Registry.counter r "a.b" in
  Alcotest.(check bool) "same ref" true (c1 == c2);
  Alcotest.(check int) "value visible through both" 1 !c2;
  let h1 = Observe.Registry.histogram r "a.lat" in
  Alcotest.(check bool) "same histogram" true
    (h1 == Observe.Registry.histogram r "a.lat");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Registry t: a.b is a counter, not a histogram")
    (fun () -> ignore (Observe.Registry.histogram r "a.b"))

let registry_reset_and_gauges () =
  let r = Observe.Registry.create ~name:"t" () in
  let c = Observe.Registry.counter r "n" in
  c := 42;
  let level = ref 7 in
  Observe.Registry.gauge r "depth" (fun () -> !level);
  Observe.Histogram.record (Observe.Registry.histogram r "lat") 100;
  Observe.Registry.reset r;
  Alcotest.(check int) "counter zeroed" 0 !c;
  Alcotest.(check bool) "histogram zeroed" true
    (Observe.Histogram.is_empty (Observe.Registry.histogram r "lat"));
  level := 9;
  (match Observe.Registry.snapshot r with
  | l -> (
      match List.assoc "depth" l with
      | Observe.Registry.Level v ->
          Alcotest.(check int) "gauge samples live state" 9 v
      | _ -> Alcotest.fail "depth should be a gauge"));
  let names = List.map fst (Observe.Registry.snapshot r) in
  Alcotest.(check (list string)) "snapshot sorted" [ "depth"; "lat"; "n" ] names

let registry_json () =
  let r = Observe.Registry.create ~name:"t" () in
  Observe.Registry.counter r {|weird"name|} := 3;
  let j = Observe.Registry.to_json r in
  Alcotest.(check bool) "escapes quotes" true (contains j {|weird\"name|});
  Alcotest.(check bool) "value present" true (contains j ": 3");
  (* the documented schema: every sample is a tagged object *)
  Alcotest.(check bool) "counters tagged" true
    (contains j {|"kind": "counter"|});
  Observe.Registry.gauge r "depth" (fun () -> 4);
  Observe.Histogram.record (Observe.Registry.histogram r "lat") 10;
  let j = Observe.Registry.to_json r in
  Alcotest.(check bool) "gauges tagged" true (contains j {|"kind": "gauge"|});
  Alcotest.(check bool) "histograms tagged" true
    (contains j {|"kind": "histogram"|});
  Alcotest.(check bool) "histogram carries quantiles" true (contains j {|"p99"|});
  (* pretty and JSON paths must agree sample-for-sample *)
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "snapshot sample %s in json" name)
        true
        (contains j (Observe.Registry.json_of_sample s)))
    (Observe.Registry.snapshot r)

(* ---- Trace ring ------------------------------------------------------------ *)

let mk_span at event = { Observe.Trace.at_ns = at; event }
let msg i = Observe.Trace.Message { scope = "t"; text = string_of_int i }

let ring_wraps () =
  let ring = Observe.Trace.Ring.create ~capacity:4 () in
  for i = 1 to 7 do
    Observe.Trace.Ring.push ring (mk_span i (msg i))
  done;
  Alcotest.(check int) "length capped" 4 (Observe.Trace.Ring.length ring);
  Alcotest.(check int) "overwrites counted" 3
    (Observe.Trace.Ring.dropped ring);
  let ats =
    List.map (fun s -> s.Observe.Trace.at_ns) (Observe.Trace.Ring.to_list ring)
  in
  Alcotest.(check (list int)) "oldest first" [ 4; 5; 6; 7 ] ats;
  Observe.Trace.Ring.clear ring;
  Alcotest.(check int) "clear" 0 (Observe.Trace.Ring.length ring)

(* ---- Zero-cost disabled tracing -------------------------------------------- *)

(* The property the satellite fix is about: when tracing is off, [emit]'s
   arguments are consumed without being rendered — a %a pretty-printer in
   the argument list is never invoked. *)
let trace_disabled_zero_cost =
  QCheck.Test.make ~name:"disabled emit never invokes %a printers"
    QCheck.(int_bound 1_000_000)
    (fun v ->
      let calls = ref 0 in
      let pp ppf x =
        incr calls;
        Fmt.int ppf x
      in
      Sim.Trace.enabled := false;
      Sim.Trace.set_sink Observe.Trace.Null;
      Sim.Trace.emit (us 1) "v=%a" pp v;
      let off_calls = !calls in
      let seen = ref 0 in
      Sim.Trace.set_sink (Observe.Trace.Fn (fun _ -> incr seen));
      Sim.Trace.emit (us 1) "v=%a" pp v;
      Sim.Trace.set_sink Observe.Trace.Null;
      off_calls = 0 && !calls = 1 && !seen = 1)

(* ---- Dispatcher spans ------------------------------------------------------- *)

(* The acceptance scenario: a keyed UDP delivery crosses ether -> ip ->
   udp; the ring must contain the full span path in order, and each
   layer's run histogram must agree with its event's raise count. *)
let span_path_reconstruction () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let kernel_b = Netsim.Host.kernel (Plexus.Stack.host p.Experiments.Common.b) in
  let ring = Observe.Trace.Ring.create ~capacity:4096 () in
  Observe.Trace.set_sink (Spin.Kernel.trace kernel_b) (Observe.Trace.Ring ring);
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let bind_exn udp ~owner ~port =
    match Plexus.Udp_mgr.bind udp ~owner ~port with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let delivered = ref 0 in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun _ -> incr delivered)
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  let sends = 5 in
  for i = 1 to sends do
    Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 7)
      (Printf.sprintf "m%d" i)
  done;
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "all datagrams delivered" sends !delivered;
  let spans = Observe.Trace.Ring.to_list ring in
  Alcotest.(check int) "nothing overwritten" 0 (Observe.Trace.Ring.dropped ring);
  let is_ether e = contains e "ethernet" in
  (* one packet's path, as (predicate, description) subsequence steps *)
  let open Observe.Trace in
  let steps =
    [
      ( "raise ether",
        function Raise r -> is_ether r.event | _ -> false );
      ( "guard hit ip@ether",
        function
        | Guard_eval g -> is_ether g.event && g.label = "ip" && g.hit
        | _ -> false );
      ( "run ip@ether",
        function
        | Handler_run h -> is_ether h.event && h.label = "ip" | _ -> false );
      ("raise ip", function Raise r -> r.event = "ip.PacketRecv" | _ -> false);
      ( "index lookup ip",
        function
        | Index_lookup i -> i.event = "ip.PacketRecv" | _ -> false );
      ( "guard hit udp@ip",
        function
        | Guard_eval g -> g.event = "ip.PacketRecv" && g.label = "udp" && g.hit
        | _ -> false );
      ( "run udp@ip",
        function
        | Handler_run h -> h.event = "ip.PacketRecv" && h.label = "udp"
        | _ -> false );
      ( "raise udp",
        function
        | Raise r -> r.event = "udp.PacketRecv" && r.indexed | _ -> false );
      (* no "index lookup udp" step: the udp event has one handler, and
         a <=1-handler event skips the hash lookup (scanning the single
         guard is cheaper) — asserted below *)
      ( "guard hit srv@udp",
        function
        | Guard_eval g ->
            g.event = "udp.PacketRecv" && g.label = "srv" && g.hit
        | _ -> false );
      ( "run srv@udp",
        function
        | Handler_run h -> h.event = "udp.PacketRecv" && h.label = "srv"
        | _ -> false );
    ]
  in
  let rec walk steps spans =
    match steps with
    | [] -> ()
    | (desc, pred) :: rest -> (
        match spans with
        | [] -> Alcotest.fail ("span path incomplete: missing " ^ desc)
        | s :: tail ->
            if pred s.Observe.Trace.event then walk rest tail
            else walk steps tail)
  in
  walk steps spans;
  (* the 1-handler udp event skips the hash lookup entirely *)
  Alcotest.(check bool) "no index lookup on a 1-handler event" false
    (List.exists
       (fun s ->
         match s.Observe.Trace.event with
         | Index_lookup i -> i.event = "udp.PacketRecv"
         | _ -> false)
       spans);
  (* per-handler histogram counts must match the raise counts *)
  let reg = Spin.Kernel.registry kernel_b in
  let counter name =
    match Observe.Registry.find reg name with
    | Some (Observe.Registry.Counter c) -> !c
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  let hist_n name =
    match Observe.Registry.find reg name with
    | Some (Observe.Registry.Hist h) -> Observe.Histogram.count h
    | _ -> Alcotest.fail ("missing histogram " ^ name)
  in
  Alcotest.(check int) "udp raises" sends (counter "spin.udp.PacketRecv.raises");
  Alcotest.(check int) "srv runs = udp raises" sends
    (hist_n "spin.udp.PacketRecv.srv.run_ns");
  Alcotest.(check int) "udp runs = ip raises" sends
    (hist_n "spin.ip.PacketRecv.udp.run_ns");
  Alcotest.(check int) "udp raises all indexed" sends
    (counter "spin.udp.PacketRecv.indexed_raises");
  (* durations in the spans must equal what the histograms recorded *)
  let span_runs =
    List.filter_map
      (fun s ->
        match s.Observe.Trace.event with
        | Handler_run h when h.event = "udp.PacketRecv" && h.label = "srv" ->
            Some h.duration_ns
        | _ -> None)
      spans
  in
  Alcotest.(check int) "one run span per datagram" sends (List.length span_runs);
  List.iter
    (fun d -> Alcotest.(check bool) "positive duration" true (d > 0))
    span_runs

(* A budget-starved EPHEMERAL handler must surface as a [Terminated]
   span (and count under spin.eph.terminated). *)
let ephemeral_terminated_span () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let registry = Observe.Registry.create ~name:"t" () in
  let trace = Observe.Trace.create () in
  let ring = Observe.Trace.Ring.create () in
  Observe.Trace.set_sink trace (Observe.Trace.Ring ring);
  let d =
    Spin.Dispatcher.create ~registry ~trace ~cpu
      ~costs:Spin.Dispatcher.default_costs ()
  in
  let ev = Spin.Dispatcher.event d "e" in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"eph" ~budget:(us 7) (fun () ->
        List.init 4 (fun _ ->
            Spin.Ephemeral.work ~label:"w" ~cost:(us 5) ignore))
  in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run engine;
  let term =
    List.filter_map
      (fun s ->
        match s.Observe.Trace.event with
        | Observe.Trace.Terminated { label; committed; total; _ } ->
            Some (label, committed, total)
        | _ -> None)
      (Observe.Trace.Ring.to_list ring)
  in
  match term with
  | [ (label, committed, total) ] ->
      Alcotest.(check string) "labelled" "eph" label;
      Alcotest.(check int) "committed prefix" 1 committed;
      Alcotest.(check int) "of total" 4 total;
      Alcotest.(check int) "terminated counted" 1
        !(Observe.Registry.counter registry "spin.eph.terminated");
      Alcotest.(check int) "dispatcher agrees" 1 (Spin.Dispatcher.terminations d)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 Terminated span, got %d" (List.length l))

(* A commit within budget emits [Ephemeral_commit] instead. *)
let ephemeral_commit_span () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let trace = Observe.Trace.create () in
  let ring = Observe.Trace.Ring.create () in
  Observe.Trace.set_sink trace (Observe.Trace.Ring ring);
  let d =
    Spin.Dispatcher.create ~trace ~cpu ~costs:Spin.Dispatcher.default_costs ()
  in
  let ev = Spin.Dispatcher.event d "e" in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~label:"eph" ~budget:(us 50) (fun () ->
        List.init 3 (fun _ ->
            Spin.Ephemeral.work ~label:"w" ~cost:(us 5) ignore))
  in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run engine;
  let commits =
    List.filter_map
      (fun s ->
        match s.Observe.Trace.event with
        | Observe.Trace.Ephemeral_commit { committed; duration_ns; _ } ->
            Some (committed, duration_ns)
        | _ -> None)
      (Observe.Trace.Ring.to_list ring)
  in
  match commits with
  | [ (committed, duration_ns) ] ->
      Alcotest.(check int) "all actions committed" 3 committed;
      Alcotest.(check int) "duration is the consumed budget" 15_000 duration_ns
  | l -> Alcotest.fail (Printf.sprintf "expected 1 commit span, got %d" (List.length l))

(* ---- Flight recorder --------------------------------------------------------- *)

(* The sampling decision is a pure function of (seed, rate, ordinal):
   same inputs, same mark — the property the parallel datapath leans on
   to pre-compute marks per shard. *)
let flight_mark_pure =
  QCheck.Test.make ~name:"mark_for is pure and returns the ordinal or 0"
    QCheck.(pair small_int (int_range 1 16))
    (fun (seed, rate) ->
      List.for_all
        (fun n ->
          let a = Observe.Flight.mark_for ~seed ~rate n in
          a = Observe.Flight.mark_for ~seed ~rate n && (a = 0 || a = n))
        (List.init 200 (fun i -> i + 1)))

(* Ring wraparound: only the newest [capacity] records are retained, in
   emission order, and every overwritten record is counted. *)
let flight_ring_wraparound =
  QCheck.Test.make ~name:"record ring keeps the newest records in order"
    QCheck.(pair (int_range 1 32) (int_bound 200))
    (fun (cap, n) ->
      let fl = Observe.Flight.create ~capacity:cap ~rate:1 ~seed:1 () in
      for i = 1 to n do
        Observe.Flight.note fl ~pkt:i ~at_ns:i ~dur_ns:0
          (Observe.Flight.Raise { event = "e" })
      done;
      let kept = min cap n in
      let got =
        List.map
          (fun (r : Observe.Flight.record) -> r.Observe.Flight.pkt)
          (Observe.Flight.records fl)
      in
      got = List.init kept (fun i -> n - kept + i + 1)
      && Observe.Flight.dropped fl = max 0 (n - cap)
      && Observe.Flight.length fl = kept)

(* The canonical two-host workload with the server kernel's recorder at
   1-in-[rate]: [sends] datagrams to the bound port plus one misdirected
   datagram that drops at the udp demux. *)
let flight_run ~rate () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let kernel_b = Netsim.Host.kernel (Plexus.Stack.host p.Experiments.Common.b) in
  Observe.Flight.set_rate (Spin.Kernel.flight kernel_b) rate;
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let bind_exn udp ~owner ~port =
    match Plexus.Udp_mgr.bind udp ~owner ~port with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun _ -> ())
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  for i = 1 to 6 do
    Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 7)
      (Printf.sprintf "m%d" i)
  done;
  Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 4242) "lost";
  Sim.Engine.run p.Experiments.Common.engine;
  kernel_b

let flight_timelines_end_to_end () =
  let kernel_b = flight_run ~rate:1 () in
  let fl = Spin.Kernel.flight kernel_b in
  Alcotest.(check bool) "frames seen" true (Observe.Flight.seen fl > 0);
  Alcotest.(check int) "rate 1 samples everything" (Observe.Flight.seen fl)
    (Observe.Flight.sampled fl);
  let recs = Observe.Flight.records fl in
  let tls = Observe.Flight.timelines recs in
  Alcotest.(check int) "one timeline per sampled frame"
    (Observe.Flight.sampled fl) (List.length tls);
  (* every timeline starts at the wire *)
  List.iter
    (fun (pkt, rs) ->
      match rs with
      | { Observe.Flight.stage = Observe.Flight.Ingress _; dur_ns = 0; _ } :: _
        ->
          ()
      | _ -> Alcotest.failf "timeline %d does not start with ingress" pkt)
    tls;
  (* delivered datagrams carry end-to-end latency measured from ingress,
     and their origin entry is released at delivery *)
  let delivered =
    List.filter
      (fun (_, rs) ->
        List.exists
          (fun (r : Observe.Flight.record) ->
            match r.Observe.Flight.stage with
            | Observe.Flight.Deliver { scope } -> scope = "udp:7"
            | _ -> false)
          rs)
      tls
  in
  Alcotest.(check int) "six delivered timelines" 6 (List.length delivered);
  List.iter
    (fun (pkt, rs) ->
      let ingress_at =
        match rs with (r : Observe.Flight.record) :: _ -> r.Observe.Flight.at_ns | [] -> 0
      in
      List.iter
        (fun (r : Observe.Flight.record) ->
          match r.Observe.Flight.stage with
          | Observe.Flight.Deliver _ ->
              Alcotest.(check int) "deliver dur = at - ingress"
                (r.Observe.Flight.at_ns - ingress_at)
                r.Observe.Flight.dur_ns;
              Alcotest.(check bool) "end-to-end latency positive" true
                (r.Observe.Flight.dur_ns > 0);
              Alcotest.(check (option int)) "origin released" None
                (Observe.Flight.origin fl ~pkt)
          | _ -> ())
        rs;
      (* the full dispatch path is attributed to the same packet *)
      let has stagep =
        List.exists
          (fun (r : Observe.Flight.record) -> stagep r.Observe.Flight.stage)
          rs
      in
      Alcotest.(check bool) "has raise" true
        (has (function Observe.Flight.Raise _ -> true | _ -> false));
      Alcotest.(check bool) "has srv handler run" true
        (has (function
          | Observe.Flight.Handler { event = "udp.PacketRecv"; label = "srv" }
            ->
              true
          | _ -> false)))
    delivered;
  (* the misdirected datagram surfaces as a drop with its reason *)
  Alcotest.(check bool) "no_port drop recorded" true
    (List.exists
       (fun (r : Observe.Flight.record) ->
         match r.Observe.Flight.stage with
         | Observe.Flight.Drop { scope = "udp"; reason = "no_port" } -> true
         | _ -> false)
       recs)

(* Same seed, same rate, same workload: the record streams are
   identical, record for record. *)
let flight_deterministic () =
  let run () =
    Observe.Flight.records (Spin.Kernel.flight (flight_run ~rate:2 ()))
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same record count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Observe.Flight.record) y ->
      if x <> y then
        Alcotest.failf "records diverge: %s vs %s"
          (Fmt.str "%a" Observe.Flight.pp_record x)
          (Fmt.str "%a" Observe.Flight.pp_record y))
    a b

(* At 1-in-N, exactly the ordinals [mark_for] picks are sampled. *)
let flight_sampled_subset () =
  let kernel_b = flight_run ~rate:3 () in
  let fl = Spin.Kernel.flight kernel_b in
  let seed = Observe.Flight.seed fl in
  List.iter
    (fun (pkt, _) ->
      Alcotest.(check int)
        (Printf.sprintf "pkt %d is a mark_for pick" pkt)
        pkt
        (Observe.Flight.mark_for ~seed ~rate:3 pkt))
    (Observe.Flight.timelines (Observe.Flight.records fl));
  Alcotest.(check bool) "sampling is a strict subset" true
    (Observe.Flight.sampled fl < Observe.Flight.seen fl)

(* Merging per-domain recorders preserves each record's home domain and
   the emission order within a packet's timeline. *)
let flight_merge_domains () =
  let mk dom =
    let fl = Observe.Flight.create ~rate:1 ~seed:7 () in
    Observe.Flight.set_domain fl dom;
    fl
  in
  let steer = mk 0 and owner = mk 1 in
  ignore (Observe.Flight.admit steer);
  ignore (Observe.Flight.admit owner);
  Observe.Flight.note steer ~pkt:5 ~at_ns:10 ~dur_ns:0
    (Observe.Flight.Hop { from_domain = 0; to_domain = 1 });
  Observe.Flight.ingress owner ~pkt:5 ~at_ns:20 ~dev:"eth0";
  Observe.Flight.note owner ~pkt:5 ~at_ns:50 ~dur_ns:30
    (Observe.Flight.Deliver { scope = "udp:7" });
  Observe.Flight.ingress owner ~pkt:9 ~at_ns:21 ~dev:"eth0";
  let m = Observe.Flight.create ~rate:1 ~seed:7 () in
  Observe.Flight.merge_into ~into:m steer;
  Observe.Flight.merge_into ~into:m owner;
  (match Observe.Flight.timelines (Observe.Flight.records m) with
  | [ (5, tl5); (9, [ _ ]) ] -> (
      match
        List.map
          (fun (r : Observe.Flight.record) ->
            (r.Observe.Flight.domain, Observe.Flight.stage_name r.Observe.Flight.stage))
          tl5
      with
      | [ (0, "hop"); (1, "ingress"); (1, "deliver") ] -> ()
      | l ->
          Alcotest.failf "wrong attribution: %s"
            (String.concat ";"
               (List.map (fun (d, s) -> Printf.sprintf "%d:%s" d s) l)))
  | tls -> Alcotest.failf "expected timelines for pkts 5 and 9, got %d" (List.length tls));
  Alcotest.(check int) "seen summed" 2 (Observe.Flight.seen m);
  Alcotest.(check int) "sampled summed" 2 (Observe.Flight.sampled m)

(* The per-extension resource ledger accumulates whether or not sampling
   is on, and the registry mirror agrees with the dump. *)
let flight_ledger_accounting () =
  let kernel_b = flight_run ~rate:0 () in
  let d = Spin.Kernel.dispatcher kernel_b in
  let reg = Spin.Kernel.registry kernel_b in
  let hi =
    List.find_map
      (fun (ei : Spin.Dispatcher.event_info) ->
        if ei.Spin.Dispatcher.ei_name <> "udp.PacketRecv" then None
        else
          List.find_opt
            (fun (h : Spin.Dispatcher.handler_info) ->
              h.Spin.Dispatcher.hi_label = "srv")
            ei.Spin.Dispatcher.ei_handlers)
      (Spin.Dispatcher.dump d)
  in
  match hi with
  | None -> Alcotest.fail "srv handler not in dump"
  | Some hi ->
      Alcotest.(check int) "six runs" 6 hi.Spin.Dispatcher.hi_runs;
      Alcotest.(check bool) "cpu charged" true
        (hi.Spin.Dispatcher.hi_cpu_ns > 0);
      let counter name =
        match Observe.Registry.find reg name with
        | Some (Observe.Registry.Counter c) -> !c
        | _ -> Alcotest.fail ("missing counter " ^ name)
      in
      Alcotest.(check int) "registry mirrors cpu ledger"
        hi.Spin.Dispatcher.hi_cpu_ns
        (counter "spin.udp.PacketRecv.srv.cpu_ns");
      Alcotest.(check int) "registry mirrors alloc ledger"
        hi.Spin.Dispatcher.hi_allocs
        (counter "spin.udp.PacketRecv.srv.mbuf_allocs");
      Alcotest.(check int) "registry mirrors termination ledger"
        hi.Spin.Dispatcher.hi_terminations
        (counter "spin.udp.PacketRecv.srv.terminations");
      (* the modelled CPU the ledger charges equals the run histogram's sum *)
      (match Observe.Registry.find reg "spin.udp.PacketRecv.srv.run_ns" with
      | Some (Observe.Registry.Hist h) ->
          Alcotest.(check int) "ledger = histogram sum"
            (Observe.Histogram.sum h) hi.Spin.Dispatcher.hi_cpu_ns
      | _ -> Alcotest.fail "run_ns histogram missing")

(* Ledger keys collide across domains only under distinct prefixes; a
   same-prefix re-merge folds them (counters sum, histograms merge). *)
let registry_merge_ledger_prefixes () =
  let mk cpu lat =
    let r = Observe.Registry.create ~name:"d" () in
    Observe.Registry.counter r "spin.udp.PacketRecv.srv.cpu_ns" := cpu;
    Observe.Histogram.record
      (Observe.Registry.histogram r "spin.udp.PacketRecv.srv.run_ns")
      lat;
    r
  in
  let d0 = mk 100 10 and d1 = mk 40 30 in
  let m = Observe.Registry.create ~name:"m" () in
  Observe.Registry.merge_into ~prefix:"domain0." ~into:m d0;
  Observe.Registry.merge_into ~prefix:"domain1." ~into:m d1;
  let counter name =
    match Observe.Registry.find m name with
    | Some (Observe.Registry.Counter c) -> !c
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  Alcotest.(check int) "domain0 ledger intact" 100
    (counter "domain0.spin.udp.PacketRecv.srv.cpu_ns");
  Alcotest.(check int) "domain1 ledger intact" 40
    (counter "domain1.spin.udp.PacketRecv.srv.cpu_ns");
  (* colliding prefix: the ledgers fold instead of clobbering *)
  Observe.Registry.merge_into ~prefix:"domain0." ~into:m d1;
  Alcotest.(check int) "colliding counters sum" 140
    (counter "domain0.spin.udp.PacketRecv.srv.cpu_ns");
  match Observe.Registry.find m "domain0.spin.udp.PacketRecv.srv.run_ns" with
  | Some (Observe.Registry.Hist h) ->
      Alcotest.(check int) "colliding histograms merge" 2
        (Observe.Histogram.count h);
      Alcotest.(check int) "merged sum" 40 (Observe.Histogram.sum h)
  | _ -> Alcotest.fail "merged histogram missing"

(* ---- Telemetry --------------------------------------------------------------- *)

(* Delta encoding: a point carries only the samples that changed since
   the previous snapshot; the point ring is bounded. *)
let telemetry_delta () =
  let r = Observe.Registry.create ~name:"t" () in
  let a = Observe.Registry.counter r "a" in
  let b = Observe.Registry.counter r "b" in
  let tel = Observe.Telemetry.create ~capacity:2 r in
  let n1 = Observe.Telemetry.record tel ~at_ns:1 in
  Alcotest.(check int) "first point carries everything" 2 n1;
  a := 5;
  let n2 = Observe.Telemetry.record tel ~at_ns:2 in
  Alcotest.(check int) "only the changed sample" 1 n2;
  (match Observe.Telemetry.points tel with
  | [ _; { Observe.Telemetry.at_ns = 2; changed = [ ("a", sample) ] } ] ->
      Alcotest.(check bool) "new value" true
        (sample = Observe.Registry.Count 5)
  | _ -> Alcotest.fail "unexpected point shape");
  let n3 = Observe.Telemetry.record tel ~at_ns:3 in
  Alcotest.(check int) "quiet interval encodes empty" 0 n3;
  b := 1;
  ignore (Observe.Telemetry.record tel ~at_ns:4);
  Alcotest.(check int) "ring bounded" 2 (Observe.Telemetry.length tel);
  Alcotest.(check int) "overwrites counted" 2 (Observe.Telemetry.dropped tel);
  Alcotest.(check int) "every tick counted" 4 (Observe.Telemetry.ticks tel);
  let j = Observe.Telemetry.to_json tel in
  Alcotest.(check bool) "json carries the series" true (contains j {|"series"|});
  Alcotest.(check bool) "json carries deltas" true (contains j {|"b"|})

(* The kernel scheduler: periodic snapshots in virtual time, stoppable. *)
let telemetry_every () =
  let engine = Sim.Engine.create () in
  let kernel = Spin.Kernel.create engine ~name:"k" in
  let reg = Spin.Kernel.registry kernel in
  let c = Observe.Registry.counter reg "work" in
  let tel, stop = Spin.Kernel.telemetry_every kernel ~period:(Sim.Stime.ms 1) in
  for i = 1 to 5 do
    ignore
      (Sim.Engine.schedule_in engine
         ~delay:(Sim.Stime.us (i * 900))
         (fun () -> incr c))
  done;
  Sim.Engine.run engine ~until:(Sim.Stime.ms 10);
  stop ();
  Alcotest.(check bool) "ticked roughly every period" true
    (Observe.Telemetry.ticks tel >= 9);
  let change_points =
    List.filter
      (fun (p : Observe.Telemetry.point) ->
        List.mem_assoc "work" p.Observe.Telemetry.changed)
      (Observe.Telemetry.points tel)
  in
  (* five bumps spread over ~4.5ms of 1ms ticks: several distinct deltas *)
  Alcotest.(check bool) "deltas recorded" true (List.length change_points >= 3);
  (* stop() cancels the rearming tick: the engine can drain *)
  Sim.Engine.run engine;
  Alcotest.(check int) "engine quiescent after stop" 0
    (Sim.Engine.pending engine)

(* ---- Introspection ---------------------------------------------------------- *)

let dispatcher_dump () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let d =
    Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs ()
  in
  let ev = Spin.Dispatcher.event d "e" in
  Spin.Dispatcher.set_keyfn ev (fun x -> [ x ]);
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~label:"keyed" ~key:3
      ~guard:(fun x -> x = 3)
      ~cost:Sim.Stime.zero
      (fun _ -> ())
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:Sim.Stime.zero (fun _ -> ())
  in
  Spin.Dispatcher.raise ev 3;
  Sim.Engine.run engine;
  match Spin.Dispatcher.dump d with
  | [ ei ] ->
      Alcotest.(check string) "event name" "e" ei.Spin.Dispatcher.ei_name;
      Alcotest.(check bool) "indexed" true ei.Spin.Dispatcher.ei_indexed;
      (match ei.Spin.Dispatcher.ei_handlers with
      | [ keyed; linear ] ->
          Alcotest.(check string) "label" "keyed" keyed.Spin.Dispatcher.hi_label;
          Alcotest.(check (option int)) "key" (Some 3) keyed.Spin.Dispatcher.hi_key;
          Alcotest.(check int) "keyed hit" 1 keyed.Spin.Dispatcher.hi_guard_hits;
          Alcotest.(check int) "keyed ran" 1 keyed.Spin.Dispatcher.hi_runs;
          Alcotest.(check string) "default label" "h1"
            linear.Spin.Dispatcher.hi_label;
          Alcotest.(check (option int)) "linear key" None
            linear.Spin.Dispatcher.hi_key;
          Alcotest.(check int) "linear ran too" 1 linear.Spin.Dispatcher.hi_runs
      | l -> Alcotest.fail (Printf.sprintf "expected 2 handlers, got %d" (List.length l)))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length l))

let kernel_introspect () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let k = Netsim.Host.kernel (Plexus.Stack.host p.Experiments.Common.a) in
  let s = Spin.Kernel.introspect k in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("introspect mentions " ^ affix) true
        (contains s affix))
    [ "ip.PacketRecv"; "udp"; "tcp"; "arp" ]

(* Metrics compatibility shim: the refs are the registry's counters. *)
let metrics_shim () =
  Metrics.reset ();
  Metrics.count_copy 100;
  (match Observe.Registry.find Metrics.registry "packet.copies" with
  | Some (Observe.Registry.Counter c) ->
      Alcotest.(check bool) "same cell" true (c == Metrics.copies);
      Alcotest.(check int) "count visible" 1 !c
  | _ -> Alcotest.fail "packet.copies not registered");
  Metrics.reset ();
  Alcotest.(check int) "reset via shim zeroes registry" 0 !(Metrics.copies)

let suite =
  [
    ( "observe.histogram",
      [
        prop hist_bucket_error;
        prop hist_vs_series;
        tc "exact bookkeeping" hist_exact_counts;
        tc "merge" hist_merge;
      ] );
    ( "observe.registry",
      [
        tc "find-or-create and kind safety" registry_find_or_create;
        tc "reset and gauges" registry_reset_and_gauges;
        tc "json escaping" registry_json;
        tc "metrics shim" metrics_shim;
      ] );
    ( "observe.trace",
      [ tc "ring wraps" ring_wraps; prop trace_disabled_zero_cost ] );
    ( "observe.spans",
      [
        tc "udp span path reconstruction" span_path_reconstruction;
        tc "ephemeral termination span" ephemeral_terminated_span;
        tc "ephemeral commit span" ephemeral_commit_span;
      ] );
    ( "observe.flight",
      [
        prop flight_mark_pure;
        prop flight_ring_wraparound;
        tc "end-to-end timelines" flight_timelines_end_to_end;
        tc "deterministic replay" flight_deterministic;
        tc "sampled set matches mark_for" flight_sampled_subset;
        tc "cross-domain merge attribution" flight_merge_domains;
        tc "per-extension ledger" flight_ledger_accounting;
        tc "ledger merge under domain prefixes" registry_merge_ledger_prefixes;
      ] );
    ( "observe.telemetry",
      [
        tc "delta encoding and bounded ring" telemetry_delta;
        tc "kernel periodic snapshots" telemetry_every;
      ] );
    ( "observe.introspection",
      [ tc "dispatcher dump" dispatcher_dump; tc "kernel introspect" kernel_introspect ] );
  ]
