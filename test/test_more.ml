(* Additional edge-case coverage: Pctx, Graph bookkeeping, Kthread,
   Trace, Ether manager policy details, Host helpers, and more property
   tests on the substrates. *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t
let us = Sim.Stime.us

let mk_ctx payload =
  let engine = Sim.Engine.create () in
  let host =
    Netsim.Host.create engine ~name:"h" ~ip:(Proto.Ipaddr.v 10 9 9 9)
  in
  let dev = Netsim.Host.add_device host (Netsim.Costs.loopback ()) in
  Plexus.Pctx.make dev (Mbuf.ro (Mbuf.of_string payload))

(* ---- Pctx ------------------------------------------------------------- *)

let pctx_cursor () =
  let ctx = mk_ctx "0123456789" in
  Alcotest.(check int) "initial payload" 10 (Plexus.Pctx.payload_len ctx);
  let ctx2 = Plexus.Pctx.advance ctx 4 in
  Alcotest.(check string) "view from cursor" "456789"
    (View.to_string (Plexus.Pctx.view ctx2));
  Alcotest.(check string) "original unchanged" "0123456789"
    (View.to_string (Plexus.Pctx.view ctx))

let pctx_limit () =
  let ctx = Plexus.Pctx.advance (mk_ctx "0123456789") 2 in
  let ctx = Plexus.Pctx.with_limit ctx 5 in
  Alcotest.(check string) "limited view" "23456"
    (View.to_string (Plexus.Pctx.view ctx));
  Alcotest.(check int) "payload_len respects limit" 5
    (Plexus.Pctx.payload_len ctx);
  Alcotest.check_raises "limit beyond packet"
    (Invalid_argument "Pctx.with_limit") (fun () ->
      ignore (Plexus.Pctx.with_limit ctx 100))

let pctx_metadata () =
  let ctx = mk_ctx "x" in
  Alcotest.check_raises "no ip header yet"
    (Invalid_argument "Pctx.ip_exn: no IP header parsed") (fun () ->
      ignore (Plexus.Pctx.ip_exn ctx));
  let h =
    Proto.Ipv4.make ~proto:17 ~src:(Proto.Ipaddr.v 1 2 3 4)
      ~dst:(Proto.Ipaddr.v 5 6 7 8) ~payload_len:1 ()
  in
  let ctx = Plexus.Pctx.with_ip ctx h in
  Alcotest.(check int) "ip attached" 17 (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.proto;
  let ctx = Plexus.Pctx.with_ports ctx ~src_port:9 ~dst_port:10 in
  Alcotest.(check (pair int int)) "ports" (9, 10)
    (ctx.Plexus.Pctx.src_port, ctx.Plexus.Pctx.dst_port);
  let ctx = Plexus.Pctx.with_payload ctx (Mbuf.ro (Mbuf.of_string "fresh")) in
  Alcotest.(check string) "payload swap resets cursor" "fresh"
    (View.to_string (Plexus.Pctx.view ctx))

(* ---- Graph bookkeeping -------------------------------------------------- *)

let graph_bookkeeping () =
  let engine = Sim.Engine.create () in
  let host = Netsim.Host.create engine ~name:"h" ~ip:(Proto.Ipaddr.v 10 0 0 1) in
  let g = Plexus.Graph.create host in
  let n1 = Plexus.Graph.node g "alpha" in
  let n1' = Plexus.Graph.node g "alpha" in
  Alcotest.(check bool) "find-or-create" true (n1 == n1');
  Alcotest.(check (option reject)) "find missing" None
    (Plexus.Graph.find_node g "nope" |> Option.map ignore);
  let _n2 = Plexus.Graph.node g "beta" in
  Plexus.Graph.add_edge g ~parent:n1 ~child:"beta" ~label:"demux";
  Alcotest.(check int) "edge recorded" 1 (List.length (Plexus.Graph.edges g));
  Plexus.Graph.remove_edge g ~parent:"alpha" ~child:"beta";
  Alcotest.(check int) "edge removed" 0 (List.length (Plexus.Graph.edges g));
  Alcotest.(check (list string)) "nodes in creation order" [ "alpha"; "beta" ]
    (Plexus.Graph.nodes g)

(* ---- Kthread ------------------------------------------------------------- *)

let kthread_spawn () =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"c" in
  let at = ref Sim.Stime.zero in
  Spin.Kthread.spawn cpu ~create_cost:(us 10) (fun () ->
      at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  Alcotest.(check int) "creation cost charged" 10_000 (Sim.Stime.to_ns !at);
  Spin.Kthread.run cpu ~cost:(us 5) (fun () -> at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  Alcotest.(check int) "run charges cost" 15_000 (Sim.Stime.to_ns !at)

(* ---- Trace ----------------------------------------------------------------- *)

let trace_toggle () =
  (* enabled tracing must not disturb results; just exercise both paths *)
  Sim.Trace.enabled := false;
  Sim.Trace.emit (us 1) "quiet %d" 1;
  Sim.Trace.enabled := true;
  Sim.Trace.emit (us 2) "loud %d" 2;
  Sim.Trace.enabled := false;
  Alcotest.(check pass) "no crash" () ()

(* ---- Ether manager policy --------------------------------------------------- *)

let ether_policy () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let ether = Plexus.Stack.ether p.Experiments.Common.a in
  Alcotest.(check bool) "ethernet is DMA" false
    (Plexus.Ether_mgr.touches_data ether);
  Alcotest.(check int) "mtu" 1500 (Plexus.Ether_mgr.mtu ether);
  (* prio follows the graph's delivery mode *)
  Alcotest.(check bool) "interrupt by default" true
    (Plexus.Ether_mgr.prio ether = Sim.Cpu.Interrupt);
  Plexus.Stack.set_delivery p.Experiments.Common.a Spin.Dispatcher.Thread;
  Alcotest.(check bool) "thread after switch" true
    (Plexus.Ether_mgr.prio ether = Sim.Cpu.Thread);
  (* ATM is PIO *)
  let q = Experiments.Common.plexus_pair (Netsim.Costs.atm ()) in
  Alcotest.(check bool) "atm touches data" true
    (Plexus.Ether_mgr.touches_data (Plexus.Stack.ether q.Experiments.Common.a))

let ether_app_handler_thread_mode () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let a = Plexus.Stack.ether p.Experiments.Common.a in
  let b = Plexus.Stack.ether p.Experiments.Common.b in
  let got = ref 0 in
  (match
     Plexus.Ether_mgr.install_handler b ~owner:"app" ~etype:0x9999
       (fun _ -> incr got)
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "install failed");
  let pkt = Mbuf.of_string "raw payload" in
  Plexus.Ether_mgr.send a ~dst:(Plexus.Ether_mgr.mac b) ~etype:0x9999 pkt;
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "delivered" 1 !got

(* ---- Endpoint -------------------------------------------------------------- *)

let endpoint_accessors () =
  let ep =
    Plexus.Endpoint.make ~proto:Plexus.Endpoint.Udp
      ~ip:(Proto.Ipaddr.v 10 0 0 1) ~port:7 ~owner:"me"
  in
  Alcotest.(check int) "port" 7 (Plexus.Endpoint.port ep);
  Alcotest.(check string) "owner" "me" (Plexus.Endpoint.owner ep);
  Alcotest.(check string) "pp" "udp:10.0.0.1:7(me)"
    (Fmt.str "%a" Plexus.Endpoint.pp ep)

(* ---- Stime properties -------------------------------------------------------- *)

let stime_add_sub =
  QCheck.Test.make ~name:"stime add/sub roundtrip"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let ta = Sim.Stime.ns a and tb = Sim.Stime.ns b in
      Sim.Stime.to_ns (Sim.Stime.sub (Sim.Stime.add ta tb) tb) = a)

let stime_scale_mul =
  QCheck.Test.make ~name:"scale by integer = mul"
    QCheck.(pair (int_bound 100_000) (int_bound 50))
    (fun (ns, k) ->
      let t = Sim.Stime.ns ns in
      Sim.Stime.to_ns (Sim.Stime.scale t (float_of_int k))
      = Sim.Stime.to_ns (Sim.Stime.mul t k))

(* ---- Byteq error paths --------------------------------------------------------- *)

let byteq_errors () =
  let q = Proto.Byteq.create () in
  Proto.Byteq.push q "abc";
  Alcotest.check_raises "peek beyond tail" (Invalid_argument "Byteq.peek_sub")
    (fun () -> ignore (Proto.Byteq.peek_sub q ~off:1 ~len:3));
  Alcotest.check_raises "drop beyond length" (Invalid_argument "Byteq.drop")
    (fun () -> Proto.Byteq.drop q 4);
  Proto.Byteq.clear q;
  Alcotest.(check int) "cleared" 0 (Proto.Byteq.length q)

(* ---- Host helpers ---------------------------------------------------------------- *)

let host_utilization_window () =
  let engine = Sim.Engine.create () in
  let host = Netsim.Host.create engine ~name:"h" ~ip:(Proto.Ipaddr.v 10 0 0 1) in
  Sim.Cpu.run (Netsim.Host.cpu host) ~cost:(us 50) ignore;
  ignore (Sim.Engine.schedule engine ~at:(us 100) ignore);
  Sim.Engine.run engine;
  Alcotest.(check (float 0.02)) "50% busy" 0.5 (Netsim.Host.utilization host);
  Netsim.Host.reset_utilization host;
  ignore (Sim.Engine.schedule engine ~at:(us 200) ignore);
  Sim.Engine.run engine;
  Alcotest.(check (float 0.02)) "idle after reset" 0.0
    (Netsim.Host.utilization host)

(* ---- dispatcher uninstall during raise -------------------------------------------- *)

let uninstall_from_handler () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs () in
  let ev = Spin.Dispatcher.event d "t" in
  let n = ref 0 in
  let un = ref (fun () -> ()) in
  un :=
    Spin.Dispatcher.install ev ~cost:Sim.Stime.zero (fun () ->
        incr n;
        (* a handler removing itself mid-delivery must be safe *)
        !un ());
  Spin.Dispatcher.raise ev ();
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  Alcotest.(check int) "ran once, then gone" 1 !n

let suite =
  [
    ( "more.pctx",
      [
        tc "cursor" pctx_cursor;
        tc "limit" pctx_limit;
        tc "metadata" pctx_metadata;
      ] );
    ("more.graph", [ tc "bookkeeping" graph_bookkeeping ]);
    ("more.kthread", [ tc "spawn and run" kthread_spawn ]);
    ("more.trace", [ tc "toggle" trace_toggle ]);
    ( "more.ether",
      [
        tc "policy and prio" ether_policy;
        tc "app handler delivery" ether_app_handler_thread_mode;
      ] );
    ("more.endpoint", [ tc "accessors and pp" endpoint_accessors ]);
    ("more.stime", [ prop stime_add_sub; prop stime_scale_mul ]);
    ("more.byteq", [ tc "error paths" byteq_errors ]);
    ("more.host", [ tc "utilization window" host_utilization_window ]);
    ("more.dispatcher", [ tc "self-uninstall during raise" uninstall_from_handler ]);
  ]

(* ---- pools and receive rings ------------------------------------------- *)

let pool_accounting () =
  let p = Pool.create ~name:"test" ~capacity:2 () in
  let a = Pool.alloc p 10 and b = Pool.alloc p ~headroom:8 10 in
  Alcotest.(check bool) "two allocations fit" true (a <> None && b <> None);
  Alcotest.(check int) "live" 2 (Pool.live p);
  Alcotest.(check bool) "third fails" true (Pool.alloc p 10 = None);
  Alcotest.(check int) "failure counted" 1 (Pool.failures p);
  (match a with Some m -> Pool.free p m | None -> ());
  Alcotest.(check bool) "after free it fits again" true (Pool.alloc p 10 <> None);
  Alcotest.(check int) "peak high-water" 2 (Pool.peak p);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Pool.create: capacity must be positive") (fun () ->
      ignore (Pool.create ~capacity:0 ()))

let rx_ring_sheds_bursts () =
  let engine = Sim.Engine.create () in
  let a, b =
    Netsim.Network.pair engine (Netsim.Costs.ethernet ())
      ~a:("a", Proto.Ipaddr.v 10 0 0 1)
      ~b:("b", Proto.Ipaddr.v 10 0 0 2)
  in
  let pool = Pool.create ~name:"rx-ring" ~capacity:4 () in
  Netsim.Dev.set_rx_pool b.Netsim.Network.dev pool;
  let got = ref 0 in
  Netsim.Dev.set_rx b.Netsim.Network.dev (fun _ -> incr got);
  (* occupy B's CPU so interrupts queue while frames keep arriving *)
  Sim.Cpu.run
    (Netsim.Host.cpu b.Netsim.Network.host)
    ~prio:Sim.Cpu.Interrupt ~cost:(Sim.Stime.ms 50) ignore;
  for _ = 1 to 20 do
    Netsim.Dev.transmit a.Netsim.Network.dev (Mbuf.alloc 200)
  done;
  Sim.Engine.run engine;
  let c = Netsim.Dev.counters b.Netsim.Network.dev in
  Alcotest.(check bool)
    (Printf.sprintf "ring drops under burst (%d drops, %d delivered)"
       c.Netsim.Dev.rx_drops !got)
    true
    (c.Netsim.Dev.rx_drops > 0 && !got >= 4);
  Alcotest.(check int) "delivered + dropped = offered" 20
    (!got + c.Netsim.Dev.rx_drops);
  Alcotest.(check int) "ring drained afterwards" 0 (Pool.live pool)

(* ---- determinism --------------------------------------------------------- *)

let simulation_deterministic () =
  let run () =
    Sim.Stats.Series.mean
      (Experiments.Common.udp_echo_plexus ~iters:20 (Netsim.Costs.ethernet ()))
  in
  let x = run () and y = run () in
  Alcotest.(check (float 0.0)) "bit-identical across runs" x y

let suite =
  suite
  @ [
      ( "more.pool",
        [ tc "accounting" pool_accounting; tc "rx ring sheds bursts" rx_ring_sheds_bursts ] );
      ("more.determinism", [ tc "identical runs" simulation_deterministic ]);
    ]
