(* Model-based fuzzing of the protocol graph: random interleavings of
   binds, handler installs/uninstalls, sends (including to dead ports,
   oversized datagrams, and forged claims) and extension link/unlink
   must never crash the kernel, and the counters must stay consistent
   with a simple model. *)

let prop t = QCheck_alcotest.to_alcotest t

type op =
  | Bind of int            (* port offset *)
  | Unbind of int
  | Send of int * int      (* port offset, payload size *)
  | Send_forged of int
  | Link_am
  | Unlink_am
  | Blast_unknown_port

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun p -> Bind p) (int_bound 4));
        (1, map (fun p -> Unbind p) (int_bound 4));
        (6, map2 (fun p s -> Send (p, s)) (int_bound 4) (int_bound 3000));
        (1, map (fun p -> Send_forged p) (int_bound 4));
        (1, return Link_am);
        (1, return Unlink_am);
        (1, return Blast_unknown_port);
      ])

let pp_op = function
  | Bind p -> Printf.sprintf "Bind %d" p
  | Unbind p -> Printf.sprintf "Unbind %d" p
  | Send (p, s) -> Printf.sprintf "Send (%d, %d)" p s
  | Send_forged p -> Printf.sprintf "Send_forged %d" p
  | Link_am -> "Link_am"
  | Unlink_am -> "Unlink_am"
  | Blast_unknown_port -> "Blast_unknown_port"

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (1 -- 40) op_gen)

let run_ops ops =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let client =
    match Plexus.Udp_mgr.bind udp_a ~owner:"fuzz" ~port:5000 with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let bound : (int, Plexus.Endpoint.t * (unit -> unit)) Hashtbl.t =
    Hashtbl.create 8
  in
  let received = ref 0 in
  let model_sent_to_bound = ref 0 in
  let am_linked = ref None in
  (* Each operation runs to quiescence, so the model is exact: a datagram
     is delivered iff its port was bound when it was sent. *)
  let step op =
      match op with
      | Bind poff -> (
          let port = 7000 + poff in
          match Plexus.Udp_mgr.bind udp_b ~owner:"fuzz" ~port with
          | Ok ep ->
              let un =
                Plexus.Udp_mgr.install_recv udp_b ep (fun _ -> incr received)
              in
              Hashtbl.replace bound port (ep, un)
          | Error (`Port_in_use _) -> ())
      | Unbind poff -> (
          let port = 7000 + poff in
          match Hashtbl.find_opt bound port with
          | Some (ep, un) ->
              un ();
              Plexus.Udp_mgr.unbind udp_b ep;
              Hashtbl.remove bound port
          | None -> ())
      | Send (poff, size) ->
          let port = 7000 + poff in
          if Hashtbl.mem bound port then incr model_sent_to_bound;
          Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, port)
            (String.make (max 1 size) 'f')
      | Send_forged poff ->
          let port = 7000 + poff in
          if Hashtbl.mem bound port then incr model_sent_to_bound;
          (match
             Plexus.Udp_mgr.send_claiming udp_a client ~claimed_src_port:666
               ~dst:(Experiments.Common.ip_b, port)
               "forged"
           with
          | Ok () -> ()
          | Error `Spoof_rejected ->
              (* only possible under Verify policy, which we never set *)
              assert false)
      | Link_am ->
          if !am_linked = None then begin
            let _ctx, ext =
              Apps.Active_messages.extension ~name:"fuzz-am"
                ~handlers:(fun _ _ ~src:_ _ -> Spin.Ephemeral.nothing)
                ()
            in
            match Plexus.Stack.link p.Experiments.Common.b ext with
            | Ok l -> am_linked := Some l
            | Error _ -> ()
          end
      | Unlink_am -> (
          match !am_linked with
          | Some l ->
              Spin.Linker.unlink l;
              am_linked := None
          | None -> ())
      | Blast_unknown_port ->
          Plexus.Udp_mgr.send udp_a client
            ~dst:(Experiments.Common.ip_b, 4444)
            "nobody"
  in
  List.iter
    (fun op ->
      step op;
      Sim.Engine.run p.Experiments.Common.engine ~max_events:1_000_000)
    ops;
  let cb = Plexus.Udp_mgr.counters udp_b in
  let disp_b =
    Spin.Kernel.dispatcher
      (Netsim.Host.kernel (Plexus.Stack.host p.Experiments.Common.b))
  in
  (* Invariants:
     - the kernel never faulted;
     - handlers fired exactly once per datagram sent to a bound port;
     - the UDP layer's accounting agrees with the model;
     - sends to unbound ports were counted and answered with ICMP. *)
  Spin.Dispatcher.faults disp_b = 0
  && !received = !model_sent_to_bound
  && cb.Plexus.Udp_mgr.delivered = !model_sent_to_bound
  && cb.Plexus.Udp_mgr.no_port = cb.Plexus.Udp_mgr.unreachable_sent

let fuzz_graph =
  QCheck.Test.make ~count:60 ~name:"random graph workloads keep invariants"
    arb_ops run_ops

let suite = [ ("fuzz.graph", [ prop fuzz_graph ]) ]

(* ---- parser robustness: random bytes never crash a codec ---------------- *)

let random_bytes = QCheck.(string_of_size Gen.(0 -- 200))

let never_raises name f =
  QCheck.Test.make ~count:300 ~name random_bytes (fun s ->
      match f (View.of_string s) with _ -> true | exception _ -> false)

let parser_fuzz =
  [
    never_raises "Ether.parse total" (fun v -> ignore (Proto.Ether.parse v));
    never_raises "Ipv4.parse total" (fun v ->
        ignore (Proto.Ipv4.parse v);
        ignore (Proto.Ipv4.checksum_valid v));
    never_raises "Udp.parse/valid total" (fun v ->
        ignore (Proto.Udp.parse v);
        ignore
          (Proto.Udp.valid ~src:(Proto.Ipaddr.v 1 2 3 4)
             ~dst:(Proto.Ipaddr.v 5 6 7 8) v));
    never_raises "Tcp_wire.parse total" (fun v ->
        match Proto.Tcp_wire.parse v with
        | Some (_, off) ->
            (* the advertised data offset is always within the segment *)
            assert (off <= View.length v)
        | None -> ());
    never_raises "Icmp.parse/valid total" (fun v ->
        ignore (Proto.Icmp.parse v);
        ignore (Proto.Icmp.valid v));
    never_raises "Arp.parse total" (fun v -> ignore (Proto.Arp.parse v));
  ]

let http_fuzz =
  QCheck.Test.make ~count:300 ~name:"Http parsers total" random_bytes (fun s ->
      match
        ( Proto.Http.parse_request s,
          Proto.Http.parse_response s )
      with
      | _ -> true
      | exception _ -> false)

(* a random segment fed to an established TCP connection never crashes *)
let tcp_input_fuzz =
  QCheck.Test.make ~count:100 ~name:"Tcp.input total on random segments"
    QCheck.(pair small_int (string_of_size Gen.(0 -- 120)))
    (fun (seed, junk) ->
      let engine = Sim.Engine.create ~seed () in
      let env =
        {
          Proto.Tcp.now = (fun () -> Sim.Engine.now engine);
          set_timer =
            (fun delay fn ->
              let h = Sim.Engine.schedule_in engine ~delay fn in
              fun () -> Sim.Engine.cancel h);
          tx = (fun _ -> ());
          on_receive = ignore;
          on_established = ignore;
          on_peer_close = ignore;
          on_close = ignore;
          on_error = ignore;
        }
      in
      let tcp =
        Proto.Tcp.create env (Proto.Tcp.default_config ())
          ~local:(Proto.Ipaddr.v 10 0 0 1, 80)
      in
      Proto.Tcp.set_remote tcp ~remote:(Proto.Ipaddr.v 10 0 0 2, 1000);
      Proto.Tcp.listen tcp;
      match Proto.Tcp.input tcp (View.of_string junk) with
      | () -> true
      | exception _ -> false)

let suite =
  suite
  @ [
      ("fuzz.parsers", List.map prop parser_fuzz @ [ prop http_fuzz ]);
      ("fuzz.tcp", [ prop tcp_input_fuzz ]);
    ]

(* ---- filter compiler and dispatch-index equivalence --------------------- *)

(* Random filter ASTs over random packet contexts: the tree interpreter
   ([Filter.eval], the reference semantics), the compiled instruction
   array ([Filter.run]) and indexed dispatch must all agree — including
   on short packets and contexts with no parsed IP header or ports,
   where field reads are Unavailable. *)

let field_gen =
  QCheck.Gen.(
    let anchor = map (fun b -> if b then Plexus.Filter.Cur else Plexus.Filter.Abs) bool in
    frequency
      [
        (3, map2 (fun a o -> Plexus.Filter.U8 (a, o)) anchor (int_bound 40));
        (3, map2 (fun a o -> Plexus.Filter.U16 (a, o)) anchor (int_bound 40));
        (2, map2 (fun a o -> Plexus.Filter.U32 (a, o)) anchor (int_bound 40));
        (2, return Plexus.Filter.Ip_proto);
        (2, return Plexus.Filter.Src_port);
        (3, return Plexus.Filter.Dst_port);
        (2, return Plexus.Filter.Payload_len);
      ])

let filter_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          frequency
            [
              (1, return Plexus.Filter.True);
              (1, return Plexus.Filter.False);
              (4, map2 (fun f v -> Plexus.Filter.Eq (f, v)) field_gen (int_bound 300));
              (2, map2 (fun f v -> Plexus.Filter.Lt (f, v)) field_gen (int_bound 300));
              (2, map2 (fun f v -> Plexus.Filter.Gt (f, v)) field_gen (int_bound 300));
              ( 2,
                map3
                  (fun f m v -> Plexus.Filter.Mask (f, m, v))
                  field_gen (int_bound 0xffff) (int_bound 0xffff) );
            ]
        in
        if n <= 1 then leaf
        else
          frequency
            [
              (2, leaf);
              (3, map2 (fun a b -> Plexus.Filter.And (a, b)) (self (n / 2)) (self (n / 2)));
              (3, map2 (fun a b -> Plexus.Filter.Or (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> Plexus.Filter.Not a) (self (n - 1)));
            ]))

(* A context description: raw bytes plus optional parsed-header state,
   with the cursor possibly advanced past fake headers. *)
type ctx_desc = {
  bytes : string;
  ip_proto : int option;
  ports : (int * int) option;
  adv : int;
}

let ctx_gen =
  QCheck.Gen.(
    map
      (fun (bytes, ip_proto, ports, adv) -> { bytes; ip_proto; ports; adv })
      (quad
         (string_size ~gen:char (0 -- 80))
         (option (int_bound 255))
         (option (pair (int_bound 300) (int_bound 300)))
         (int_bound 30)))

(* One shared device for minting packet contexts. *)
let fuzz_dev =
  lazy
    (let engine = Sim.Engine.create () in
     let host =
       Netsim.Host.create engine ~name:"fuzz" ~ip:(Proto.Ipaddr.v 10 9 9 9)
     in
     Netsim.Host.add_device host (Netsim.Costs.loopback ()))

let make_ctx d =
  let dev = Lazy.force fuzz_dev in
  let ctx = Plexus.Pctx.make dev (Mbuf.ro (Mbuf.of_string d.bytes)) in
  let ctx =
    match d.ip_proto with
    | None -> ctx
    | Some proto ->
        Plexus.Pctx.with_ip ctx
          (Proto.Ipv4.make ~proto ~src:(Proto.Ipaddr.v 10 0 0 1)
             ~dst:(Proto.Ipaddr.v 10 9 9 9)
             ~payload_len:(String.length d.bytes) ())
  in
  let ctx =
    match d.ports with
    | None -> ctx
    | Some (src_port, dst_port) -> Plexus.Pctx.with_ports ctx ~src_port ~dst_port
  in
  Plexus.Pctx.advance ctx (min d.adv (String.length d.bytes))

let pp_pair (f, d) =
  Format.asprintf "filter=%a bytes=%d ip=%s ports=%s adv=%d" Plexus.Filter.pp f
    (String.length d.bytes)
    (match d.ip_proto with None -> "-" | Some p -> string_of_int p)
    (match d.ports with
    | None -> "-"
    | Some (s, p) -> Printf.sprintf "%d,%d" s p)
    d.adv

let arb_filter_ctx =
  QCheck.make ~print:pp_pair QCheck.Gen.(pair filter_gen ctx_gen)

let compiled_eval_agree =
  QCheck.Test.make ~count:1000 ~name:"eval = run(compile) = compile_guard"
    arb_filter_ctx
    (fun (f, d) ->
      let ctx = make_ctx d in
      let reference = Plexus.Filter.eval f ctx in
      Plexus.Filter.run (Plexus.Filter.compile f) ctx = reference
      && Plexus.Filter.compile_guard f ctx = reference
      && Plexus.Filter.eval (Plexus.Filter.normalize f) ctx = reference)

(* Indexed dispatch delivers to exactly the handlers the linear
   interpreter would: install the same random filters on two events —
   unkeyed with interpreted guards, keyed (dispatch_key + context_keys)
   with compiled guards — and compare the accepted sets per packet. *)
let indexed_dispatch_agrees =
  QCheck.Test.make ~count:200 ~name:"indexed dispatch = linear interpreter"
    QCheck.(
      make
        ~print:(fun (fs, ds) ->
          String.concat "\n"
            (List.map (fun f -> Format.asprintf "%a" Plexus.Filter.pp f) fs)
          ^ Printf.sprintf "\n(%d packets)" (List.length ds))
        Gen.(pair (list_size (1 -- 8) filter_gen) (list_size (1 -- 6) ctx_gen)))
    (fun (filters, descs) ->
      let e = Sim.Engine.create () in
      let cpu = Sim.Cpu.create e ~name:"c" in
      let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs () in
      let linear_ev = Spin.Dispatcher.event d "linear" in
      let indexed_ev = Spin.Dispatcher.event d "indexed" in
      Spin.Dispatcher.set_keyfn indexed_ev Plexus.Filter.context_keys;
      let n = List.length filters in
      let linear_hits = Array.make n 0 and indexed_hits = Array.make n 0 in
      List.iteri
        (fun i f ->
          let (_ : unit -> unit) =
            Spin.Dispatcher.install linear_ev
              ~guard:(Plexus.Filter.eval f)
              ~cost:Sim.Stime.zero
              (fun _ -> linear_hits.(i) <- linear_hits.(i) + 1)
          in
          let prog = Plexus.Filter.compile f in
          let (_ : unit -> unit) =
            Spin.Dispatcher.install indexed_ev
              ~guard:(Plexus.Filter.run prog)
              ?key:(Plexus.Filter.dispatch_key f)
              ~cost:Sim.Stime.zero
              (fun _ -> indexed_hits.(i) <- indexed_hits.(i) + 1)
          in
          ())
        filters;
      List.iter
        (fun desc ->
          let ctx = make_ctx desc in
          Spin.Dispatcher.raise linear_ev ctx;
          Spin.Dispatcher.raise indexed_ev ctx;
          Sim.Engine.run e)
        descs;
      linear_hits = indexed_hits)

(* The merged decision tree delivers to exactly the handlers — in exactly
   the order — that both the bucket index and the linear interpreter
   would, under random install/uninstall churn.  Three events share one
   dispatcher: [linear] (no extractor), [indexed] (bucket index, tree
   ablated per-event), [tree] (vectored extractor, tree on).  Handlers
   mix tree-expressible guards (keys from [Filter.key_conjuncts], exact
   iff [Filter.keys_exact]) with opaque closures the tree can only
   attach as leaf residuals; toggling a handler bumps the generation
   mid-churn, forcing incremental rebuilds.  Delivery order is recorded
   per event, not just hit counts: the tree's exact/residual merge must
   reproduce scan order. *)
type churn_step = Fire of ctx_desc | Toggle of int

let churn_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun d -> Fire d) ctx_gen);
        (2, map (fun i -> Toggle i) (int_bound 7));
      ])

let pp_churn = function
  | Fire d ->
      Printf.sprintf "Fire(bytes=%d,ip=%s,ports=%s,adv=%d)"
        (String.length d.bytes)
        (match d.ip_proto with None -> "-" | Some p -> string_of_int p)
        (match d.ports with
        | None -> "-"
        | Some (s, p) -> Printf.sprintf "%d,%d" s p)
        d.adv
  | Toggle i -> Printf.sprintf "Toggle %d" i

let arb_tree_churn =
  QCheck.make
    ~print:(fun ((fs, opq), steps) ->
      String.concat "\n"
        (List.map2
           (fun f o ->
             Format.asprintf "%s%a" (if o then "opaque: " else "") Plexus.Filter.pp
               f)
           fs opq)
      ^ "\n" ^ String.concat "; " (List.map pp_churn steps))
    QCheck.Gen.(
      pair
        (pair (list_size (return 8) filter_gen) (list_size (return 8) bool))
        (list_size (2 -- 16) churn_gen))

let tree_dispatch_agrees =
  QCheck.Test.make ~count:200
    ~name:"tree dispatch = bucket index = linear interpreter"
    arb_tree_churn
    (fun ((filters, opaque), steps) ->
      let filters = Array.of_list filters in
      let opaque = Array.of_list opaque in
      let e = Sim.Engine.create () in
      let cpu = Sim.Cpu.create e ~name:"c" in
      let d =
        Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs ()
      in
      let linear_ev = Spin.Dispatcher.event d "linear" in
      let indexed_ev = Spin.Dispatcher.event d "indexed" in
      let tree_ev = Spin.Dispatcher.event d "tree" in
      Spin.Dispatcher.set_keyfn indexed_ev Plexus.Filter.context_keys;
      Spin.Dispatcher.set_event_tree indexed_ev false;
      Spin.Dispatcher.set_keyvfn tree_ev ~dims:Plexus.Filter.num_key_dims
        Plexus.Filter.read_context_keys;
      let n = Array.length filters in
      (* delivery sequences, most recent first: handler index per firing *)
      let linear_seq = ref [] and indexed_seq = ref [] and tree_seq = ref [] in
      let uninstalls = Array.make n None in
      let install_all i =
        let f = filters.(i) in
        let prog = Plexus.Filter.compile f in
        let un_l =
          Spin.Dispatcher.install linear_ev
            ~guard:(Plexus.Filter.eval f)
            ~cost:Sim.Stime.zero
            (fun _ -> linear_seq := i :: !linear_seq)
        in
        let un_i =
          Spin.Dispatcher.install indexed_ev
            ~guard:(Plexus.Filter.run prog)
            ?key:(Plexus.Filter.dispatch_key f)
            ~cost:Sim.Stime.zero
            (fun _ -> indexed_seq := i :: !indexed_seq)
        in
        let un_t =
          (* an "opaque" handler hides its structure from the compiler:
             the tree must fall back to evaluating it as a residual at
             every leaf it could reach *)
          if opaque.(i) then
            Spin.Dispatcher.install tree_ev
              ~guard:(Plexus.Filter.run prog)
              ~cost:Sim.Stime.zero
              (fun _ -> tree_seq := i :: !tree_seq)
          else
            Spin.Dispatcher.install tree_ev
              ~guard:(Plexus.Filter.run prog)
              ?key:(Plexus.Filter.dispatch_key f)
              ~keys:(Plexus.Filter.key_conjuncts f)
              ~exact:(Plexus.Filter.keys_exact f)
              ~cost:Sim.Stime.zero
              (fun _ -> tree_seq := i :: !tree_seq)
        in
        uninstalls.(i) <- Some (fun () -> un_l (); un_i (); un_t ())
      in
      for i = 0 to n - 1 do install_all i done;
      List.iter
        (fun step ->
          match step with
          | Toggle i -> (
              (* uninstall if installed, reinstall fresh otherwise: either
                 way the generation bumps and the tree must rebuild *)
              match uninstalls.(i) with
              | Some un ->
                  un ();
                  uninstalls.(i) <- None
              | None -> install_all i)
          | Fire desc ->
              let ctx = make_ctx desc in
              Spin.Dispatcher.raise linear_ev ctx;
              Spin.Dispatcher.raise indexed_ev ctx;
              Spin.Dispatcher.raise tree_ev ctx;
              Sim.Engine.run e)
        steps;
      Spin.Dispatcher.faults d = 0
      && !tree_seq = !linear_seq
      && !tree_seq = !indexed_seq)

let suite =
  suite
  @ [
      ( "fuzz.filter",
        [
          prop compiled_eval_agree;
          prop indexed_dispatch_agrees;
          prop tree_dispatch_agrees;
        ] );
    ]
