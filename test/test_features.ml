(* Tests for the extension features: ICMP port unreachable, UDP
   multicast semantics, the HTTP extension, TCP RTT estimation and
   Nagle. *)

let tc name f = Alcotest.test_case name `Quick f

let ip_a = Experiments.Common.ip_a
let ip_b = Experiments.Common.ip_b

let pair () = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ())

let bind_exn udp ~owner ~port =
  match Plexus.Udp_mgr.bind udp ~owner ~port with
  | Ok ep -> ep
  | Error _ -> Alcotest.fail "bind failed"

(* ---- ICMP port unreachable -------------------------------------------- *)

let udp_port_unreachable_plexus () =
  let p = pair () in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 4444) "anyone there?";
  Sim.Engine.run p.Experiments.Common.engine;
  let cb = Plexus.Udp_mgr.counters (Plexus.Stack.udp p.Experiments.Common.b) in
  Alcotest.(check int) "no_port counted" 1 cb.Plexus.Udp_mgr.no_port;
  Alcotest.(check int) "unreachable generated" 1
    cb.Plexus.Udp_mgr.unreachable_sent;
  Alcotest.(check int) "sender was notified" 1
    (Plexus.Icmp_mgr.unreachables_received
       (Plexus.Stack.icmp p.Experiments.Common.a))

let udp_port_unreachable_du () =
  let p = Experiments.Common.du_pair (Netsim.Costs.ethernet ()) in
  let client =
    match Osmodel.Du_stack.udp_bind p.Experiments.Common.dua ~port:5000 with
    | Ok s -> s
    | Error _ -> Alcotest.fail "bind failed"
  in
  Osmodel.Du_stack.udp_sendto p.Experiments.Common.dua client ~dst:(ip_b, 4444)
    "anyone?";
  Sim.Engine.run p.Experiments.Common.du_engine;
  Alcotest.(check int) "no_port counted" 1
    (Osmodel.Du_stack.counters p.Experiments.Common.dub).Osmodel.Du_stack.no_port

(* ---- UDP multicast semantics ------------------------------------------- *)

let multicast_delivers_to_all () =
  let p = pair () in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let counts = Array.make 3 0 in
  for i = 0 to 2 do
    let ep = bind_exn udp_b ~owner:"sink" ~port:(7000 + i) in
    let (_ : unit -> unit) =
      Plexus.Udp_mgr.install_recv udp_b ep (fun ctx ->
          if View.to_string (Plexus.Pctx.view ctx) = "frame" then
            counts.(i) <- counts.(i) + 1)
    in
    ()
  done;
  let src = bind_exn udp_a ~owner:"video" ~port:9000 in
  Plexus.Udp_mgr.send_multi udp_a src
    ~dsts:[ (ip_b, 7000); (ip_b, 7001); (ip_b, 7002) ]
    "frame";
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check (array int)) "every destination got it" [| 1; 1; 1 |] counts

let multicast_cheaper_than_unicast () =
  (* With 8 destinations and a large frame on a DMA device, the single
     checksum pass of send_multi must beat 8 independent sends. *)
  let cost_of send =
    let p = Experiments.Common.plexus_pair (Netsim.Costs.t3 ()) in
    let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
    let src = bind_exn udp_a ~owner:"video" ~port:9000 in
    let dsts = List.init 8 (fun i -> (ip_b, 7000 + i)) in
    let cpu = Netsim.Host.cpu (Plexus.Stack.host p.Experiments.Common.a) in
    send udp_a src dsts (String.make 8000 'f');
    Sim.Engine.run p.Experiments.Common.engine;
    Sim.Stime.to_us (Sim.Cpu.busy_time cpu)
  in
  let multi =
    cost_of (fun udp src dsts data -> Plexus.Udp_mgr.send_multi udp src ~dsts data)
  in
  let uni =
    cost_of (fun udp src dsts data ->
        List.iter (fun dst -> Plexus.Udp_mgr.send udp src ~dst data) dsts)
  in
  Alcotest.(check bool)
    (Printf.sprintf "multicast %.0fus < unicast %.0fus by ~7 checksum passes"
       multi uni)
    true
    (uni -. multi > 7. *. 8000. *. 0.020 && multi < uni)

(* ---- HTTP as a linked extension ----------------------------------------- *)

let http_extension_serves_and_unlinks () =
  let p = pair () in
  let t, ext = Apps.Http_ext.extension ~port:80 ~name:"httpd" () in
  Apps.Http_ext.add_route t "/hello" "world\n";
  let linked =
    match Plexus.Stack.link p.Experiments.Common.b ext with
    | Ok l -> l
    | Error f -> Alcotest.failf "link failed: %a" Spin.Extension.pp_failure f
  in
  let result = ref None in
  Apps.Http_client.get p.Experiments.Common.a ~dst:(ip_b, 80) ~path:"/hello"
    (fun r -> result := r);
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 150);
  (match !result with
  | Some r ->
      Alcotest.(check int) "status" 200 r.Apps.Http_client.status;
      Alcotest.(check string) "body" "world\n" r.Apps.Http_client.body
  | None -> Alcotest.fail "no response while linked");
  Alcotest.(check int) "request served" 1 (Apps.Http_ext.requests t);
  (* unlink tears the listener down; a new request goes unanswered *)
  Spin.Linker.unlink linked;
  let result2 = ref None in
  Apps.Http_client.get p.Experiments.Common.a ~dst:(ip_b, 80) ~path:"/hello"
    (fun r -> result2 := r);
  Sim.Engine.run p.Experiments.Common.engine
    ~until:(Sim.Stime.add (Sim.Engine.now p.Experiments.Common.engine) (Sim.Stime.s 2));
  Alcotest.(check bool) "no response after unlink" true (!result2 = None);
  Alcotest.(check int) "no extra request" 1 (Apps.Http_ext.requests t)

let http_extension_port_conflict_fails_link () =
  let p = pair () in
  let _t1, ext1 = Apps.Http_ext.extension ~port:80 ~name:"httpd1" () in
  (match Plexus.Stack.link p.Experiments.Common.b ext1 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first link failed");
  let _t2, ext2 = Apps.Http_ext.extension ~port:80 ~name:"httpd2" () in
  match Plexus.Stack.link p.Experiments.Common.b ext2 with
  | Error (Spin.Extension.Init_raised _) -> ()
  | Ok _ -> Alcotest.fail "conflicting listener linked"
  | Error f -> Alcotest.failf "wrong failure: %a" Spin.Extension.pp_failure f

(* ---- TCP RTT estimation and Nagle --------------------------------------- *)

let tcp_rtt_estimation () =
  let p = pair () in
  let got = ref 0 in
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp p.Experiments.Common.b)
       ~owner:"sink" ~port:80
       ~on_accept:(fun conn ->
         Plexus.Tcp_mgr.on_receive conn (fun d -> got := !got + String.length d))
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "listen failed");
  match
    Plexus.Tcp_mgr.connect (Plexus.Stack.tcp p.Experiments.Common.a)
      ~owner:"src" ~dst:(ip_b, 80) ()
  with
  | Error _ -> Alcotest.fail "connect failed"
  | Ok conn ->
      Plexus.Tcp_mgr.on_established conn (fun () ->
          Plexus.Tcp_mgr.send conn (String.make 50_000 's'));
      Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 30);
      Alcotest.(check int) "delivered" 50_000 !got;
      let tcp = Plexus.Tcp_mgr.tcp conn in
      Alcotest.(check bool) "samples collected" true
        (Proto.Tcp.rtt_samples tcp > 3);
      let srtt = Sim.Stime.to_us (Proto.Tcp.srtt tcp) in
      (* per-packet RTT on 10 Mb/s Ethernet with 1460B data + ack: a few ms *)
      Alcotest.(check bool)
        (Printf.sprintf "srtt plausible (%.0fus)" srtt)
        true
        (srtt > 500. && srtt < 100_000.)

(* Nagle: with the option on, many 1-byte sends while data is in flight
   coalesce into far fewer segments. *)
let tcp_nagle_coalesces () =
  let segs_with nagle =
    let cfg = Proto.Tcp.default_config ~nagle () in
    let p = pair () in
    let got = ref 0 in
    (match
       Plexus.Tcp_mgr.listen (Plexus.Stack.tcp p.Experiments.Common.b)
         ~owner:"sink" ~port:80
         ~on_accept:(fun conn ->
           Plexus.Tcp_mgr.on_receive conn (fun d -> got := !got + String.length d))
         ()
     with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "listen failed");
    match
      Plexus.Tcp_mgr.connect (Plexus.Stack.tcp p.Experiments.Common.a)
        ~owner:"src" ~dst:(ip_b, 80) ~cfg ()
    with
    | Error _ -> Alcotest.fail "connect failed"
    | Ok conn ->
        let engine = p.Experiments.Common.engine in
        Plexus.Tcp_mgr.on_established conn (fun () ->
            (* 50 tiny writes, 100us apart *)
            for i = 0 to 49 do
              ignore
                (Sim.Engine.schedule_in engine
                   ~delay:(Sim.Stime.us (100 * i))
                   (fun () -> Plexus.Tcp_mgr.send conn "x"))
            done);
        Sim.Engine.run engine ~until:(Sim.Stime.s 30);
        Alcotest.(check int) "all bytes arrive" 50 !got;
        (Proto.Tcp.counters (Plexus.Tcp_mgr.tcp conn)).Proto.Tcp.segs_out
  in
  let without = segs_with false in
  let with_nagle = segs_with true in
  Alcotest.(check bool)
    (Printf.sprintf "nagle coalesces (%d -> %d data segments)" without
       with_nagle)
    true
    (with_nagle < without - 10)

let suite =
  [
    ( "features.icmp_unreachable",
      [
        tc "plexus generates and counts" udp_port_unreachable_plexus;
        tc "digital unix counts" udp_port_unreachable_du;
      ] );
    ( "features.multicast",
      [
        tc "delivers to every destination" multicast_delivers_to_all;
        tc "single checksum pass" multicast_cheaper_than_unicast;
      ] );
    ( "features.http_extension",
      [
        tc "serves while linked, dead after unlink" http_extension_serves_and_unlinks;
        tc "port conflict fails the link cleanly" http_extension_port_conflict_fails_link;
      ] );
    ( "features.tcp",
      [
        tc "RTT estimation" tcp_rtt_estimation;
        tc "nagle coalesces small writes" tcp_nagle_coalesces;
      ] );
  ]

(* ---- fault containment ---------------------------------------------------- *)

let handler_fault_contained () =
  let p = pair () in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let server = bind_exn udp_b ~owner:"buggy" ~port:7 in
  let healthy = bind_exn udp_b ~owner:"healthy" ~port:8 in
  let healthy_got = ref 0 in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun _ -> failwith "extension bug")
  in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b healthy (fun _ -> incr healthy_got)
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "crash me";
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 8) "still alive?";
  Sim.Engine.run p.Experiments.Common.engine;
  let disp =
    Spin.Kernel.dispatcher
      (Netsim.Host.kernel (Plexus.Stack.host p.Experiments.Common.b))
  in
  Alcotest.(check int) "fault counted" 1 (Spin.Dispatcher.faults disp);
  Alcotest.(check int) "other handlers unaffected" 1 !healthy_got;
  (* the faulting handler was uninstalled: a second packet to port 7
     does not fault again *)
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "again";
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "no repeat fault" 1 (Spin.Dispatcher.faults disp)

let guard_fault_contained () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs () in
  let ev = Spin.Dispatcher.event d "t" in
  let ok = ref 0 in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun _ -> failwith "bad guard")
      ~cost:Sim.Stime.zero (fun _ -> ())
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:Sim.Stime.zero (fun _ -> incr ok)
  in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  Alcotest.(check int) "fault counted" 1 (Spin.Dispatcher.faults d);
  Alcotest.(check int) "healthy handler ran" 1 !ok;
  Alcotest.(check int) "faulting guard removed" 1
    (Spin.Dispatcher.handler_count ev)

(* ---- diagnostics and ablations ------------------------------------------- *)

let stack_report () =
  let p = pair () in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun _ -> ())
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "x";
  Sim.Engine.run p.Experiments.Common.engine;
  let r = Plexus.Stack.report p.Experiments.Common.b in
  Alcotest.(check bool) "mentions udp counters" true
    (Proto.Str_find.find_sub r "udp: rx=1 delivered=1" <> None);
  Alcotest.(check bool) "mentions dispatcher" true
    (Proto.Str_find.find_sub r "dispatcher:" <> None)

let dispatch_sensitivity_shape () =
  match Experiments.Ablate.dispatch_sensitivity ~factors:[ 1; 100 ] ~iters:20 () with
  | [ base; inflated ] ->
      Alcotest.(check bool) "x100 dispatch visibly slower" true
        (inflated.Experiments.Ablate.rtt_us > base.Experiments.Ablate.rtt_us +. 100.);
      Alcotest.(check bool) "but not catastrophic (<3x)" true
        (inflated.Experiments.Ablate.rtt_us < 3. *. base.Experiments.Ablate.rtt_us)
  | _ -> Alcotest.fail "wrong shape"

let multicast_video_ablation () =
  let uni, multi = Experiments.Ablate.video_multicast_util ~streams:15 () in
  Alcotest.(check bool)
    (Printf.sprintf "multicast halves server CPU (%.1f%% -> %.1f%%)"
       (100. *. uni) (100. *. multi))
    true
    (multi < 0.6 *. uni)

let suite =
  suite
  @ [
      ( "features.safety",
        [
          tc "handler fault contained" handler_fault_contained;
          tc "guard fault contained" guard_fault_contained;
        ] );
      ( "features.diagnostics",
        [
          tc "stack report" stack_report;
          Alcotest.test_case "dispatch sensitivity" `Slow dispatch_sensitivity_shape;
          Alcotest.test_case "multicast video ablation" `Slow multicast_video_ablation;
        ] );
    ]

(* ---- packet filters -------------------------------------------------------- *)

let mk_ctx payload =
  let engine = Sim.Engine.create () in
  let host =
    Netsim.Host.create engine ~name:"h" ~ip:(Proto.Ipaddr.v 10 9 9 9)
  in
  let dev = Netsim.Host.add_device host (Netsim.Costs.loopback ()) in
  Plexus.Pctx.make dev (Mbuf.ro (Mbuf.of_string payload))

let filter_eval_fields () =
  let ctx = mk_ctx "\x01\x02\x03\x04" in
  let open Plexus.Filter in
  Alcotest.(check bool) "u8" true (eval (Eq (U8 (Cur, 0), 1)) ctx);
  Alcotest.(check bool) "u16" true (eval (Eq (U16 (Cur, 1), 0x0203)) ctx);
  Alcotest.(check bool) "u32" true (eval (Eq (U32 (Abs, 0), 0x01020304)) ctx);
  Alcotest.(check bool) "payload_len" true (eval (Eq (Payload_len, 4)) ctx);
  Alcotest.(check bool) "lt" true (eval (Lt (U8 (Cur, 0), 2)) ctx);
  Alcotest.(check bool) "gt" false (eval (Gt (U8 (Cur, 0), 2)) ctx);
  Alcotest.(check bool) "mask" true (eval (Mask (U8 (Cur, 1), 0x0f, 2)) ctx)

let filter_boolean_ops () =
  let ctx = mk_ctx "\x01" in
  let open Plexus.Filter in
  let t = Eq (U8 (Cur, 0), 1) and f = Eq (U8 (Cur, 0), 9) in
  Alcotest.(check bool) "and" true (eval (And (t, t)) ctx);
  Alcotest.(check bool) "and false" false (eval (And (t, f)) ctx);
  Alcotest.(check bool) "or" true (eval (Or (f, t)) ctx);
  Alcotest.(check bool) "not" true (eval (Not f) ctx);
  Alcotest.(check bool) "true/false" true
    (eval True ctx && not (eval False ctx))

let filter_unavailable_fields () =
  let ctx = mk_ctx "\x01" in
  let open Plexus.Filter in
  (* short packet, unparsed headers, unset ports: comparisons are false *)
  Alcotest.(check bool) "oob read" false (eval (Eq (U32 (Cur, 0), 0)) ctx);
  Alcotest.(check bool) "no ip header" false (eval (ip_proto_is 17) ctx);
  Alcotest.(check bool) "no ports" false (eval (dst_port_is 7) ctx);
  (* ...but their negation is then true, which a careful filter can use *)
  Alcotest.(check bool) "not of unavailable" true (eval (Not (dst_port_is 7)) ctx)

let filter_costs () =
  let open Plexus.Filter in
  let f = And (Eq (U8 (Cur, 0), 1), Or (True, Not False)) in
  Alcotest.(check int) "node count" 6 (nodes f);
  Alcotest.(check int) "cost scales with nodes" 900
    (Sim.Stime.to_ns (eval_cost f));
  Alcotest.(check bool) "pp renders" true
    (String.length (Fmt.str "%a" pp f) > 10)

let filter_demux_end_to_end () =
  let p = pair () in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let server = bind_exn udp_b ~owner:"filtered" ~port:7 in
  let big = ref 0 and all = ref 0 in
  (* two handlers on the same endpoint: one interpreted filter accepting
     only payloads > 100 bytes, one unfiltered *)
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv_filtered udp_b server
      Plexus.Filter.(Gt (Payload_len, 100))
      (fun _ -> incr big)
  in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun _ -> incr all)
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "small";
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) (String.make 300 'L');
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "filter matched only the large datagram" 1 !big;
  Alcotest.(check int) "plain handler saw both" 2 !all

let filter_ablation_shape () =
  let r = Experiments.Ablate.filter_vs_guard ~iters:20 () in
  Alcotest.(check bool)
    (Printf.sprintf "interpretation costs a little (%.1f vs %.1f)"
       r.Experiments.Ablate.interpreted_rtt r.Experiments.Ablate.native_rtt)
    true
    (r.Experiments.Ablate.interpreted_rtt > r.Experiments.Ablate.native_rtt
    && r.Experiments.Ablate.interpreted_rtt
       < r.Experiments.Ablate.native_rtt +. 20.)

let suite =
  suite
  @ [
      ( "features.filter",
        [
          tc "field evaluation" filter_eval_fields;
          tc "boolean operators" filter_boolean_ops;
          tc "unavailable fields" filter_unavailable_fields;
          tc "cost model and pp" filter_costs;
          tc "end-to-end demux" filter_demux_end_to_end;
          Alcotest.test_case "interpreted vs compiled" `Slow filter_ablation_shape;
        ] );
    ]

(* ---- overload / livelock ----------------------------------------------------- *)

let livelock_shape () =
  let low =
    Experiments.Livelock.run_one ~mode:Spin.Dispatcher.Interrupt
      ~offered_pps:1_000 ()
  in
  let high =
    Experiments.Livelock.run_one ~mode:Spin.Dispatcher.Interrupt
      ~offered_pps:12_000 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "interrupt mode livelocks under overload (%.0f -> %.0f)" low high)
    true
    (low > 5_000. && high < 100.)

(* ---- UDP multiple implementations ---------------------------------------------- *)

let udp_multiple_implementations () =
  let p = pair () in
  let b = p.Experiments.Common.b in
  let udp_b = Plexus.Stack.udp b in
  Plexus.Udp_mgr.exclude_ports udp_b [ 9999 ];
  (* UDP-special claims exactly the ceded port at the IP level *)
  let special = ref 0 in
  let ip_node = Plexus.Ip_mgr.node (Plexus.Stack.ip b) in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install
      (Plexus.Graph.recv_event ip_node)
      ~guard:(fun ctx ->
        (match ctx.Plexus.Pctx.ip with
        | Some h -> h.Proto.Ipv4.proto = Proto.Ipv4.proto_udp
        | None -> false)
        &&
        let v = Plexus.Pctx.view ctx in
        View.length v >= 4 && View.get_u16 v 2 = 9999)
      ~cost:(Sim.Stime.us 3)
      (fun _ -> incr special)
  in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 9999) "to the special impl";
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "UDP-special got it" 1 !special;
  Alcotest.(check int) "UDP-standard ignored it" 0
    (Plexus.Udp_mgr.counters udp_b).Plexus.Udp_mgr.rx

(* ---- forwarder TTL ---------------------------------------------------------------- *)

let forwarder_ttl_expiry () =
  let engine = Sim.Engine.create () in
  let c, (m1, _m2), _s =
    Netsim.Network.line3 engine (Netsim.Costs.ethernet ())
      ~client:("client", Experiments.Common.ip_client)
      ~middle:("middle", Experiments.Common.ip_middle)
      ~server:("server", Experiments.Common.ip_server)
  in
  let middle =
    Plexus.Stack.build
      ~subnets:[ (Experiments.Common.net1, 24); (Experiments.Common.net2, 24) ]
      m1.Netsim.Network.host
  in
  Plexus.Arp_mgr.prime
    (List.nth (Plexus.Stack.arps middle) 0)
    Experiments.Common.ip_client
    (Netsim.Dev.mac c.Netsim.Network.dev);
  let fwd =
    Apps.Forwarder.create middle ~listen_port:5353
      ~backend:(Experiments.Common.ip_server, 5353)
  in
  (* craft a UDP datagram with TTL 1 straight onto the client's device *)
  let pkt = Mbuf.of_string "dying" in
  Proto.Udp.encapsulate pkt ~src:Experiments.Common.ip_client
    ~dst:Experiments.Common.ip_middle ~src_port:6000 ~dst_port:5353;
  Proto.Ipv4.encapsulate pkt
    (Proto.Ipv4.make ~ttl:1 ~proto:Proto.Ipv4.proto_udp
       ~src:Experiments.Common.ip_client ~dst:Experiments.Common.ip_middle
       ~payload_len:(Mbuf.length pkt) ());
  Proto.Ether.encapsulate pkt
    {
      Proto.Ether.dst = Netsim.Dev.mac m1.Netsim.Network.dev;
      src = Netsim.Dev.mac c.Netsim.Network.dev;
      etype = Proto.Ether.etype_ip;
    };
  Netsim.Dev.transmit c.Netsim.Network.dev pkt;
  Sim.Engine.run engine ~until:(Sim.Stime.s 2);
  Alcotest.(check int) "dropped on ttl expiry" 1 (Apps.Forwarder.ttl_drops fwd);
  Alcotest.(check int) "nothing forwarded" 0 (Apps.Forwarder.forwarded fwd)

let motivation_shapes () =
  (match Experiments.Motivate.wan_windows ~windows:[ 8_192; 65_535 ] () with
  | [ small; big ] ->
      Alcotest.(check bool)
        (Printf.sprintf "window-limited WAN transfer (%.2f vs %.2f Mb/s)"
           small.Experiments.Motivate.mbps big.Experiments.Motivate.mbps)
        true
        (big.Experiments.Motivate.mbps > 4. *. small.Experiments.Motivate.mbps);
      (* each is bounded by its window/RTT ceiling *)
      Alcotest.(check bool) "below ceiling" true
        (small.Experiments.Motivate.mbps <= 8_192. *. 8. /. 60_000. +. 0.1)
  | _ -> Alcotest.fail "wrong shape");
  let t = Experiments.Motivate.transactions ~n:10 () in
  Alcotest.(check bool)
    (Printf.sprintf "tuned TCP beats stock on transactions (%.0f vs %.0f us)"
       t.Experiments.Motivate.tuned_us t.Experiments.Motivate.stock_us)
    true
    (t.Experiments.Motivate.tuned_us < 0.8 *. t.Experiments.Motivate.stock_us)

let suite =
  suite
  @ [
      ( "features.motivation",
        [ Alcotest.test_case "section 1.1 claims" `Slow motivation_shapes ] );
      ( "features.overload",
        [ Alcotest.test_case "interrupt-mode livelock" `Slow livelock_shape ] );
      ( "features.multi_impl",
        [ tc "UDP implementation exclusion" udp_multiple_implementations ] );
      ("features.forwarder_ttl", [ tc "ttl expiry" forwarder_ttl_expiry ]);
    ]

(* ---- user-level protocol library (section 6 related work) ------------------- *)

let ulib_end_to_end () =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.ethernet ())
      ~a:("a", Experiments.Common.ip_a) ~b:("b", Experiments.Common.ip_b)
  in
  let ua = Osmodel.Ulib.create ea.Netsim.Network.host in
  let ub = Osmodel.Ulib.create eb.Netsim.Network.host in
  Osmodel.Ulib.prime_arp ua Experiments.Common.ip_b
    (Netsim.Dev.mac eb.Netsim.Network.dev);
  Osmodel.Ulib.prime_arp ub Experiments.Common.ip_a
    (Netsim.Dev.mac ea.Netsim.Network.dev);
  let server =
    match Osmodel.Ulib.udp_bind ub ~port:7 with
    | Ok s -> s
    | Error _ -> Alcotest.fail "bind failed"
  in
  let got = ref [] in
  Osmodel.Ulib.udp_set_recv server (fun ~src data -> got := (snd src, data) :: !got);
  let client =
    match Osmodel.Ulib.udp_bind ua ~port:5001 with
    | Ok s -> s
    | Error _ -> Alcotest.fail "bind failed"
  in
  Osmodel.Ulib.udp_sendto ua client ~dst:(ip_b, 7) "user level!";
  (* a large datagram exercises user-level reassembly too *)
  Osmodel.Ulib.udp_sendto ua client ~dst:(ip_b, 7) (String.make 4000 'u');
  Sim.Engine.run engine;
  (match List.rev !got with
  | [ (5001, "user level!"); (5001, big) ] ->
      Alcotest.(check int) "reassembled at user level" 4000 (String.length big)
  | _ -> Alcotest.fail "wrong deliveries");
  Alcotest.(check int) "counters" 2 (Osmodel.Ulib.counters ub).Osmodel.Ulib.delivered

let ulib_filter_rejects_others () =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.ethernet ())
      ~a:("a", Experiments.Common.ip_a) ~b:("b", Experiments.Common.ip_b)
  in
  let _ua = Osmodel.Ulib.create ea.Netsim.Network.host in
  let ub = Osmodel.Ulib.create eb.Netsim.Network.host in
  (* a frame of an unknown EtherType never crosses to user space *)
  let junk = Mbuf.of_string "junk" in
  Proto.Ether.encapsulate junk
    {
      Proto.Ether.dst = Netsim.Dev.mac eb.Netsim.Network.dev;
      src = Netsim.Dev.mac ea.Netsim.Network.dev;
      etype = 0x9999;
    };
  Netsim.Dev.transmit ea.Netsim.Network.dev junk;
  Sim.Engine.run engine;
  Alcotest.(check int) "filtered in the kernel" 1
    (Osmodel.Ulib.counters ub).Osmodel.Ulib.filtered_out

let fig5_user_library_ordering () =
  let mean p = Sim.Stats.Series.mean p in
  let params = Netsim.Costs.ethernet () in
  let plexus = mean (Experiments.Common.udp_echo_plexus ~iters:30 params) in
  let ulib = mean (Experiments.Common.udp_echo_ulib ~iters:30 params) in
  let du = mean (Experiments.Common.udp_echo_du ~iters:30 params) in
  Alcotest.(check bool)
    (Printf.sprintf "plexus (%.0f) well below user-lib (%.0f)" plexus ulib)
    true
    (plexus < 0.8 *. ulib);
  Alcotest.(check bool)
    (Printf.sprintf "user-lib (%.0f) in DU's neighbourhood (%.0f)" ulib du)
    true
    (ulib > 0.7 *. du && ulib < 1.3 *. du)

(* ---- ARP retry/give-up --------------------------------------------------------- *)

let arp_gives_up_on_dead_host () =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.ethernet ())
      ~a:("a", Experiments.Common.ip_a) ~b:("b", Experiments.Common.ip_b)
  in
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  (* B never answers: no stack is built on it *)
  Netsim.Dev.set_rx eb.Netsim.Network.dev (fun _ -> ());
  let udp_a = Plexus.Stack.udp a in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "anyone?";
  Sim.Engine.run engine ~until:(Sim.Stime.s 30);
  let arp = Plexus.Stack.arp a in
  Alcotest.(check bool) "request retransmitted" true
    (Plexus.Arp_mgr.requests_sent arp >= 3);
  Alcotest.(check int) "resolution abandoned" 1
    (Plexus.Arp_mgr.resolution_failures arp)

let suite =
  suite
  @ [
      ( "features.user_library",
        [
          tc "end to end (with reassembly)" ulib_end_to_end;
          tc "kernel filter rejects foreign frames" ulib_filter_rejects_others;
          Alcotest.test_case "figure-5 ordering" `Slow fig5_user_library_ordering;
        ] );
      ("features.arp_retry", [ tc "give-up on dead host" arp_gives_up_on_dead_host ]);
    ]

(* ---- blast vs TCP on a lossy link --------------------------------------- *)

let blast_beats_tcp_under_loss () =
  let r = Experiments.Motivate.blast_vs_tcp ~loss:0.02 ~bytes:200_000 () in
  Alcotest.(check bool) "both complete" true
    (not (Float.is_nan r.Experiments.Motivate.tcp_ms)
    && not (Float.is_nan r.Experiments.Motivate.blast_ms));
  Alcotest.(check bool)
    (Printf.sprintf "blast at least 2x faster (%.0f vs %.0f ms)"
       r.Experiments.Motivate.blast_ms r.Experiments.Motivate.tcp_ms)
    true
    (r.Experiments.Motivate.blast_ms *. 2. < r.Experiments.Motivate.tcp_ms)

let suite =
  suite
  @ [
      ( "features.blast_vs_tcp",
        [ Alcotest.test_case "ALF wins under loss" `Slow blast_beats_tcp_under_loss ] );
    ]
