(* Multicore datapath: Rng stream determinism and non-overlap, SPSC ring
   behaviour (single- and cross-domain), registry merging, and the
   oracle-equivalence soak between the 1-domain engine and the N-domain
   sharded runs. *)

module Sdomain = Stdlib.Domain
(* [Spin.Domain] is the protection domain; this file spawns execution
   domains, so the alias keeps every use explicit. *)

(* --- Rng.stream properties --------------------------------------------- *)

(* Streams are pure functions of (seed, index): rebuilding the stream
   reproduces the draw sequence exactly, no matter what other generators
   drew in between. *)
let stream_deterministic =
  QCheck.Test.make ~count:200 ~name:"Rng.stream is a function of (seed, index)"
    QCheck.(pair small_int (int_bound 15))
    (fun (seed, index) ->
      let a = Sim.Rng.stream ~seed ~index in
      (* perturb unrelated global draw state between constructions *)
      let noise = Sim.Rng.create (seed + 17) in
      let (_ : int) = Sim.Rng.int noise 1000 in
      let b = Sim.Rng.stream ~seed ~index in
      let wa = List.init 64 (fun _ -> Sim.Rng.int a 1_000_000) in
      let wb = List.init 64 (fun _ -> Sim.Rng.int b 1_000_000) in
      wa = wb)

(* Pairwise non-overlap over a sampled window: distinct domain indices
   of the same seed never replay each other's output windows.  (A
   collision over 1000 63-bit draws per stream would be astronomically
   unlikely unless the streams were correlated.) *)
let stream_nonoverlap () =
  let seed = 0xC0FFEE in
  let window = 1000 and streams = 8 in
  let seen = Hashtbl.create (window * streams) in
  for index = 0 to streams - 1 do
    let rng = Sim.Rng.stream ~seed ~index in
    for _ = 1 to window do
      let v = Sim.Rng.int rng max_int in
      (match Hashtbl.find_opt seen v with
      | Some other ->
          Alcotest.failf "streams %d and %d both drew %d" other index v
      | None -> ());
      Hashtbl.replace seen v index
    done
  done;
  Alcotest.(check int) "all draws distinct" (window * streams)
    (Hashtbl.length seen)

let stream_distinct_from_split () =
  (* the documented distinction: [split] depends on the parent's
     position, [stream] does not *)
  let parent1 = Sim.Rng.create 42 in
  let (_ : int) = Sim.Rng.int parent1 10 in
  let child1 = Sim.Rng.split parent1 in
  let parent2 = Sim.Rng.create 42 in
  let child2 = Sim.Rng.split parent2 in
  Alcotest.(check bool) "split is position-dependent" false
    (Sim.Rng.int child1 1_000_000 = Sim.Rng.int child2 1_000_000
    && Sim.Rng.int child1 1_000_000 = Sim.Rng.int child2 1_000_000);
  let s1 = Sim.Rng.stream ~seed:42 ~index:0 in
  let s2 = Sim.Rng.stream ~seed:42 ~index:0 in
  Alcotest.(check int) "stream is position-independent"
    (Sim.Rng.int s1 1_000_000) (Sim.Rng.int s2 1_000_000)

(* --- SPSC ring --------------------------------------------------------- *)

let spsc_fifo () =
  let r = Par.Spsc.create ~capacity:8 in
  Alcotest.(check int) "rounded capacity" 8 (Par.Spsc.capacity r);
  for i = 1 to 8 do
    Alcotest.(check bool) "push accepted" true (Par.Spsc.try_push r i)
  done;
  Alcotest.(check bool) "full ring rejects" false (Par.Spsc.try_push r 9);
  Alcotest.(check int) "length" 8 (Par.Spsc.length r);
  let out = ref [] in
  let n = Par.Spsc.drain r (fun x -> out := x :: !out) in
  Alcotest.(check int) "drained all" 8 n;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (List.rev !out);
  Alcotest.(check bool) "empty after drain" true (Par.Spsc.is_empty r);
  (* indices wrap past capacity *)
  for i = 9 to 20 do
    Alcotest.(check bool) "push after wrap" true (Par.Spsc.try_push r i);
    Alcotest.(check (option int)) "pop after wrap" (Some i) (Par.Spsc.pop r)
  done

(* Cross-domain stress: one producer domain pushes a counted sequence
   through a small ring; the consumer asserts FIFO completeness. *)
let spsc_cross_domain () =
  let r = Par.Spsc.create ~capacity:64 in
  let total = 50_000 in
  let producer =
    Sdomain.spawn (fun () ->
        for i = 1 to total do
          while not (Par.Spsc.try_push r i) do
            Sdomain.cpu_relax ()
          done
        done)
  in
  let next = ref 1 in
  while !next <= total do
    match Par.Spsc.pop r with
    | Some v ->
        if v <> !next then Alcotest.failf "got %d, expected %d" v !next;
        incr next
    | None -> Sdomain.cpu_relax ()
  done;
  Sdomain.join producer;
  Alcotest.(check bool) "ring empty at end" true (Par.Spsc.is_empty r)

(* --- registry merge ---------------------------------------------------- *)

let registry_merge () =
  let a = Observe.Registry.create ~name:"a" () in
  let b = Observe.Registry.create ~name:"b" () in
  Observe.Registry.counter a "x" := 3;
  Observe.Registry.counter b "x" := 4;
  Observe.Registry.gauge a "g" (fun () -> 10);
  Observe.Registry.gauge b "g" (fun () -> 7);
  let ha = Observe.Registry.histogram a "h" in
  Observe.Histogram.record ha 5;
  let hb = Observe.Registry.histogram b "h" in
  Observe.Histogram.record hb 9;
  Observe.Histogram.record hb 11;
  let m = Observe.Registry.create ~name:"merged" () in
  Observe.Registry.merge_into ~into:m a;
  Observe.Registry.merge_into ~into:m b;
  (match Observe.Registry.find m "x" with
  | Some (Observe.Registry.Counter r) ->
      Alcotest.(check int) "counters sum" 7 !r
  | _ -> Alcotest.fail "x not a counter");
  (match Observe.Registry.find m "g" with
  | Some (Observe.Registry.Gauge f) ->
      Alcotest.(check int) "gauges stack" 17 (f ())
  | _ -> Alcotest.fail "g not a gauge");
  (match Observe.Registry.find m "h" with
  | Some (Observe.Registry.Hist h) ->
      let s = Observe.Histogram.snapshot h in
      Alcotest.(check int) "hist n" 3 s.Observe.Histogram.n;
      Alcotest.(check int) "hist sum" 25 s.Observe.Histogram.sum
  | _ -> Alcotest.fail "h not a histogram");
  (* prefixed merge keeps per-domain views distinct *)
  let p = Observe.Registry.create ~name:"prefixed" () in
  Observe.Registry.merge_into ~prefix:"domain0." ~into:p a;
  Observe.Registry.merge_into ~prefix:"domain1." ~into:p b;
  Alcotest.(check bool) "domain0.x present" true
    (Observe.Registry.mem p "domain0.x");
  Alcotest.(check bool) "domain1.x present" true
    (Observe.Registry.mem p "domain1.x")

(* --- oracle equivalence ------------------------------------------------ *)

let check_equiv ~oracle ~par =
  List.iter2
    (fun (name, expect) (name', got) ->
      assert (name = name');
      Alcotest.(check int)
        (Printf.sprintf "%s (%dd vs oracle)" name par.Par.Node.domains)
        expect got)
    (Par.Node.equiv_counters oracle)
    (Par.Node.equiv_counters par)

(* The tentpole's soak: the same seeded plan through the 1-domain oracle
   and the sharded runs must agree counter-for-counter on every
   delivery, drop and cache total. *)
let equivalence_soak () =
  List.iter
    (fun seed ->
      let plan = Par.Rss.make ~seed ~flows:48 ~pkts_per_flow:12 () in
      let oracle = Par.Node.run ~domains:1 plan in
      Alcotest.(check int) "oracle delivers every datagram"
        plan.Par.Rss.udp_frames oracle.Par.Node.delivered;
      Alcotest.(check int) "oracle answers every arp"
        plan.Par.Rss.arp_frames oracle.Par.Node.arp_replies;
      Alcotest.(check int) "no evictions (flows below capacity)" 0
        oracle.Par.Node.cache_evictions;
      List.iter
        (fun domains ->
          let par = Par.Node.run ~domains plan in
          check_equiv ~oracle ~par;
          let expect = plan.Par.Rss.udp_frames + plan.Par.Rss.arp_frames in
          Alcotest.(check int) "every frame processed exactly once" expect
            (Array.fold_left
               (fun acc (d : Par.Node.domain_stats) -> acc + d.processed)
               0 par.Par.Node.per_domain))
        [ 2; 4 ])
    [ 7; 42; 1996 ]

(* Mis-sharded traffic must actually cross the rings: legacy flows and
   ARP broadcasts make forwarded > 0 overwhelmingly likely at >= 2
   domains, and the equivalence above proves the handoff is lossless. *)
let forwarding_exercised () =
  let plan = Par.Rss.make ~seed:3 ~flows:64 ~pkts_per_flow:6 () in
  let s = Par.Node.run ~domains:2 plan in
  Alcotest.(check bool) "some frames forwarded" true (s.Par.Node.forwarded > 0);
  let oracle = Par.Node.run ~domains:1 plan in
  Alcotest.(check int) "oracle forwards nothing" 0 oracle.Par.Node.forwarded

(* The uncached datapath must agree with the oracle too (the cache is a
   per-node switch, not a correctness dependency). *)
let equivalence_uncached () =
  let plan = Par.Rss.make ~seed:11 ~flows:24 ~pkts_per_flow:5 () in
  let oracle = Par.Node.run ~flowcache:false ~domains:1 plan in
  let par = Par.Node.run ~flowcache:false ~domains:3 plan in
  check_equiv ~oracle ~par;
  Alcotest.(check int) "no cache traffic" 0
    (oracle.Par.Node.cache_hits + oracle.Par.Node.cache_misses)

(* Speedup sanity in simulated time: with per-domain engines, the
   makespan (max busy) at 2 domains must beat 1 domain by a clear
   margin on a balanced plan. *)
let simulated_speedup () =
  let plan = Par.Rss.make ~seed:5 ~flows:96 ~pkts_per_flow:8 () in
  let s1 = Par.Node.run ~domains:1 plan in
  let s2 = Par.Node.run ~domains:2 plan in
  let ratio = s2.Par.Node.datagrams_per_s /. s1.Par.Node.datagrams_per_s in
  if ratio < 1.3 then
    Alcotest.failf "2-domain simulated speedup %.2fx < 1.3x" ratio

let merged_registry_labels () =
  let plan = Par.Rss.make ~seed:9 ~flows:16 ~pkts_per_flow:4 () in
  let s = Par.Node.run ~domains:2 plan in
  Alcotest.(check bool) "domain-indexed metrics present" true
    (List.exists
       (fun (k, _) -> String.length k > 7 && String.sub k 0 7 = "domain1")
       (Observe.Registry.snapshot s.Par.Node.registry));
  match Observe.Registry.find s.Par.Node.registry "par.forwarded" with
  | Some (Observe.Registry.Counter r) ->
      Alcotest.(check int) "par.forwarded merged" s.Par.Node.forwarded !r
  | _ -> Alcotest.fail "par.forwarded missing from merged registry"

(* --- flight recorder across domains ------------------------------------ *)

(* With sampling on, the sampled set is exactly [Flight.mark_for] over
   the plan's arrival ordinals (every domain derives marks from the plan
   seed, so steering and owning domains agree without shipping ids
   through the rings); forwarded frames carry a sender-side Hop record
   followed by owner-side stages; and equivalence with the oracle still
   holds — sampling must not perturb the datapath. *)
let flight_cross_domain () =
  let rate = 4 in
  let plan = Par.Rss.make ~seed:3 ~flows:64 ~pkts_per_flow:6 () in
  let oracle = Par.Node.run ~domains:1 plan in
  let par = Par.Node.run ~flight_rate:rate ~domains:2 plan in
  check_equiv ~oracle ~par;
  Alcotest.(check bool) "frames forwarded under sampling" true
    (par.Par.Node.forwarded > 0);
  let fl = par.Par.Node.flight in
  let total = plan.Par.Rss.udp_frames + plan.Par.Rss.arp_frames in
  Alcotest.(check int) "every arrival counted once" total
    (Observe.Flight.seen fl);
  let expected =
    List.filter
      (fun n ->
        Observe.Flight.mark_for ~seed:plan.Par.Rss.seed ~rate n > 0)
      (List.init total (fun i -> i + 1))
  in
  Alcotest.(check int) "sampled = mark_for picks" (List.length expected)
    (Observe.Flight.sampled fl);
  let tls = Observe.Flight.timelines (Observe.Flight.records fl) in
  Alcotest.(check (list int)) "timeline per pick, none lost in handoff"
    expected (List.map fst tls);
  (* hopped packets: sender-side attribution, then owner-side stages *)
  let hopped =
    List.filter
      (fun (_, rs) ->
        List.exists
          (fun (r : Observe.Flight.record) ->
            match r.Observe.Flight.stage with
            | Observe.Flight.Hop _ -> true
            | _ -> false)
          rs)
      tls
  in
  Alcotest.(check bool) "some sampled frames hopped" true (hopped <> []);
  List.iter
    (fun (pkt, rs) ->
      let hop_to = ref (-1) in
      List.iter
        (fun (r : Observe.Flight.record) ->
          match r.Observe.Flight.stage with
          | Observe.Flight.Hop { from_domain; to_domain } ->
              Alcotest.(check int)
                (Printf.sprintf "pkt %d hop emitted by sender" pkt)
                from_domain r.Observe.Flight.domain;
              hop_to := to_domain
          | (Observe.Flight.Ingress _ | Observe.Flight.Deliver _)
            when !hop_to >= 0 ->
              (* every stage after the handoff runs on the owning domain *)
              Alcotest.(check int)
                (Printf.sprintf "pkt %d stage on owning domain" pkt)
                !hop_to r.Observe.Flight.domain
          | _ -> ())
        rs)
    hopped

(* par.ring.* counters account for the handoff machinery: every
   forwarded frame is an enqueue; attributed drains (backpressure
   self-drains and phase-B quiescence drains) never exceed the enqueues
   (routine periodic drains are deliberately unattributed). *)
let ring_counters_account () =
  let plan = Par.Rss.make ~seed:3 ~flows:64 ~pkts_per_flow:6 () in
  let domains = 2 in
  let s = Par.Node.run ~domains plan in
  (* the merged registry keeps per-domain views distinct *)
  let counter name =
    List.fold_left
      (fun acc d ->
        match
          Observe.Registry.find s.Par.Node.registry
            (Printf.sprintf "domain%d.%s" d name)
        with
        | Some (Observe.Registry.Counter r) -> acc + !r
        | _ -> Alcotest.fail (Printf.sprintf "missing domain%d.%s" d name))
      0
      (List.init domains Fun.id)
  in
  Alcotest.(check int) "enqueues = forwarded" s.Par.Node.forwarded
    (counter "par.ring.enqueues");
  Alcotest.(check bool) "attributed drains bounded by enqueues" true
    (counter "par.ring.self_drains" + counter "par.ring.phase_b_drains"
    <= s.Par.Node.forwarded)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "parallel.rng",
      [
        prop stream_deterministic;
        tc "streams pairwise non-overlapping" stream_nonoverlap;
        tc "stream vs split semantics" stream_distinct_from_split;
      ] );
    ( "parallel.spsc",
      [ tc "FIFO, bounds, wrap" spsc_fifo; tc "cross-domain stress" spsc_cross_domain ] );
    ( "parallel.registry",
      [ tc "merge counters/gauges/hists" registry_merge ] );
    ( "parallel.equivalence",
      [
        tc "oracle vs 2/4 domains, 3 seeds" equivalence_soak;
        tc "rings actually exercised" forwarding_exercised;
        tc "uncached datapath agrees" equivalence_uncached;
        tc "simulated speedup at 2 domains" simulated_speedup;
        tc "merged registry carries domain labels" merged_registry_labels;
      ] );
    ( "parallel.flight",
      [
        tc "timelines survive cross-domain handoff" flight_cross_domain;
        tc "ring handoff counters" ring_counters_account;
      ] );
  ]
