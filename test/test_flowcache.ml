(* Tests for the per-flow fast-path cache and the batched delivery path:
   record/replay equivalence, generation-counter invalidation, recording
   re-entrancy, the path_cache counters, Pool slot batching, device batch
   delivery, and the Cpu.charge reservation the synchronous replay uses. *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t
let us = Sim.Stime.us

module D = Spin.Dispatcher

(* A two-level chain: [root] has a forwarder that raises [mid]; handlers
   on both log (tag, payload).  The root's flow signature is the
   payload's low bits, and every guard reads only those bits, so equal
   signatures are indistinguishable to guards — the cacheability
   contract. *)
type side = {
  engine : Sim.Engine.t;
  d : D.t;
  root : int D.event;
  mid : int D.event;
  log : (int * int) list ref;
}

let mk_side ~flowcache =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"cpu" in
  let d = D.create ~cpu ~costs:D.default_costs () in
  D.set_flow_cache d flowcache;
  let root = D.event d "root" in
  let mid = D.event d "mid" in
  D.set_sigfn root (fun v -> Some (string_of_int (v land 3)));
  let log = ref [] in
  let (_ : unit -> unit) =
    D.install root ~cacheable:true ~label:"fwd" ~cost:(us 1) (fun v ->
        log := (-1, v) :: !log;
        D.raise mid v)
  in
  { engine = e; d; root; mid; log }

let install_logger ?(cacheable = true) ?guard s ev tag =
  D.install ev ?guard ~cacheable
    ~label:(Printf.sprintf "h%d" tag)
    ~cost:(us 1)
    (fun v -> s.log := (tag, v) :: !(s.log))

let send s v =
  D.raise s.root v;
  Sim.Engine.run s.engine

let delivered s = List.rev !(s.log)

(* ---- record / hit / invalidate -------------------------------------- *)

let hit_replays_same_chain () =
  let s = mk_side ~flowcache:true in
  let (_ : unit -> unit) = install_logger s s.mid 1 in
  let (_ : unit -> unit) =
    install_logger s s.mid 2 ~guard:(fun v -> v land 3 = 0)
  in
  send s 0;
  Alcotest.(check int) "first raise misses" 1 (D.path_cache_misses s.d);
  Alcotest.(check int) "entry committed" 1 (D.cache_entries s.root);
  send s 4;
  (* same signature class: replay *)
  send s 8;
  Alcotest.(check int) "two hits" 2 (D.path_cache_hits s.d);
  Alcotest.(check int) "no further misses" 1 (D.path_cache_misses s.d);
  Alcotest.(check (list (pair int int)))
    "same handler sequence per packet"
    [ (-1, 0); (1, 0); (2, 0); (-1, 4); (1, 4); (2, 4); (-1, 8); (1, 8); (2, 8) ]
    (delivered s)

let disabled_by_default () =
  let s = mk_side ~flowcache:false in
  let (_ : unit -> unit) = install_logger s s.mid 1 in
  send s 0;
  send s 0;
  Alcotest.(check int) "no entries" 0 (D.cache_entries s.root);
  Alcotest.(check int) "no hits" 0 (D.path_cache_hits s.d);
  Alcotest.(check int) "no misses counted while disabled" 0
    (D.path_cache_misses s.d)

let uninstall_invalidates_before_next_packet () =
  let s = mk_side ~flowcache:true in
  let (_ : unit -> unit) = install_logger s s.mid 1 in
  let un2 = install_logger s s.mid 2 in
  send s 0;
  send s 0;
  Alcotest.(check int) "warm hit" 1 (D.path_cache_hits s.d);
  un2 ();
  (* mid's generation moved: the cached chain must not fire h2 *)
  s.log := [];
  send s 0;
  Alcotest.(check (list (pair int int)))
    "uninstalled handler no longer delivered"
    [ (-1, 0); (1, 0) ]
    (delivered s);
  Alcotest.(check int) "stale entry counted as invalidation" 1
    (D.path_cache_invalidations s.d);
  Alcotest.(check int) "stale lookup is a miss (re-records)" 2
    (D.path_cache_misses s.d);
  send s 0;
  Alcotest.(check int) "re-recorded chain hits again" 2
    (D.path_cache_hits s.d)

let touch_invalidates () =
  let s = mk_side ~flowcache:true in
  let (_ : unit -> unit) = install_logger s s.mid 1 in
  send s 0;
  send s 0;
  Alcotest.(check int) "warm hit" 1 (D.path_cache_hits s.d);
  D.touch s.mid;
  send s 0;
  Alcotest.(check int) "touch forces a miss" 2 (D.path_cache_misses s.d);
  Alcotest.(check int) "touch counted as invalidation" 1
    (D.path_cache_invalidations s.d)

(* A handler that churns the graph *while the chain is being recorded*
   must not let a stale chain commit (the recording is re-validated at
   delivery end — the re-entrancy fix). *)
let churn_during_recording_discards_entry () =
  let s = mk_side ~flowcache:true in
  let un_victim = ref (fun () -> ()) in
  let first = ref true in
  let (_ : unit -> unit) =
    D.install s.mid ~cacheable:true ~label:"churner" ~cost:(us 1) (fun v ->
        s.log := (1, v) :: !(s.log);
        if !first then begin
          first := false;
          !un_victim ()
        end)
  in
  un_victim := install_logger s s.mid 2;
  send s 0;
  Alcotest.(check int) "churned recording not committed" 0
    (D.cache_entries s.root);
  Alcotest.(check int) "discard counted as invalidation" 1
    (D.path_cache_invalidations s.d);
  (* next packet records the post-churn chain and then replays it.  (On
     the first packet the victim never fires at all: it was uninstalled
     before its queued delivery ran, which graph dispatch also honors.) *)
  send s 0;
  send s 0;
  Alcotest.(check int) "clean re-record then hit" 1 (D.path_cache_hits s.d);
  Alcotest.(check (list (pair int int)))
    "post-churn chain stable"
    [ (-1, 0); (1, 0); (-1, 0); (1, 0); (-1, 0); (1, 0) ]
    (delivered s)

(* A handler that uninstalls a *later* hop's handler mid-replay: the
   stale hop is detected when the nested raise tries to consume it, the
   entry is dropped, and the remainder falls back to graph dispatch —
   the uninstalled handler must not run. *)
let churn_during_replay_diverges_safely () =
  let s = mk_side ~flowcache:true in
  let leaf = D.event s.d "leaf" in
  let un_victim = ref (fun () -> ()) in
  let armed = ref false in
  let (_ : unit -> unit) =
    D.install s.mid ~cacheable:true ~label:"fwd2" ~cost:(us 1) (fun v ->
        s.log := (1, v) :: !(s.log);
        if !armed then begin
          armed := false;
          !un_victim ()
        end;
        D.raise leaf v)
  in
  un_victim :=
    D.install leaf ~cacheable:true ~label:"victim" ~cost:(us 1) (fun v ->
        s.log := (2, v) :: !(s.log));
  send s 0;
  send s 0;
  Alcotest.(check int) "warm hit" 1 (D.path_cache_hits s.d);
  armed := true;
  s.log := [];
  send s 0;
  Alcotest.(check (list (pair int int)))
    "victim does not fire after mid-replay uninstall"
    [ (-1, 0); (1, 0) ]
    (delivered s);
  Alcotest.(check int) "divergence drops the entry" 0 (D.cache_entries s.root);
  send s 0;
  send s 0;
  Alcotest.(check int) "re-records and hits again" 3 (D.path_cache_hits s.d)

(* ---- qcheck: cached == uncached under random churn ------------------- *)

(* Random interleavings of install / uninstall / touch / raise applied
   to two identical dispatcher graphs, flow cache on and off: the
   delivery logs must be identical.  Guards read only the signature
   bits; a sprinkling of non-cacheable installs exercises chain
   poisoning, which must also preserve equivalence (by never caching). *)
let equivalence_under_churn =
  QCheck.Test.make ~count:120
    ~name:"cached dispatch == uncached dispatch under churn"
    QCheck.(
      list_of_size
        Gen.(0 -- 40)
        (oneof
           [
             map
               (fun (on_root, cls, cacheable) ->
                 `Install (on_root, cls, cacheable))
               (triple bool (int_range (-1) 3) bool);
             map (fun i -> `Uninstall i) (int_bound 20);
             map (fun on_root -> `Touch on_root) bool;
             map (fun v -> `Raise v) (int_bound 15);
           ]))
    (fun ops ->
      let cached = mk_side ~flowcache:true in
      let uncached = mk_side ~flowcache:false in
      let apply s uninstallers tag = function
        | `Install (on_root, cls, cacheable) ->
            let target = if on_root then s.root else s.mid in
            let guard = if cls < 0 then None else Some (fun v -> v land 3 = cls) in
            uninstallers :=
              !uninstallers @ [ install_logger ~cacheable ?guard s target tag ]
        | `Uninstall i -> (
            match !uninstallers with
            | [] -> ()
            | l ->
                let i = i mod List.length l in
                (List.nth l i) ();
                uninstallers := List.filteri (fun j _ -> j <> i) l)
        | `Touch on_root -> D.touch (if on_root then s.root else s.mid)
        | `Raise v -> send s v
      in
      let uc = ref [] and uu = ref [] in
      List.iteri (fun tag op -> apply cached uc tag op) ops;
      List.iteri (fun tag op -> apply uncached uu tag op) ops;
      delivered cached = delivered uncached)

(* ---- full stack ------------------------------------------------------ *)

let stack_counters () =
  let p =
    Experiments.Common.plexus_pair ~flowcache:true (Netsim.Costs.ethernet ())
  in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let got = ref [] in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"srv" ~port:7 with
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun ctx ->
            got := View.to_string (Plexus.Pctx.view ctx) :: !got)
      in
      ()
  | Error _ -> Alcotest.fail "bind failed");
  let client =
    match Plexus.Udp_mgr.bind udp_a ~owner:"cli" ~port:5000 with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let disp_b = Plexus.Graph.dispatcher (Plexus.Stack.graph p.Experiments.Common.b) in
  let ping i =
    Plexus.Udp_mgr.send udp_a client
      ~dst:(Experiments.Common.ip_b, 7)
      (Printf.sprintf "ping-%d" i);
    Sim.Engine.run p.Experiments.Common.engine
  in
  (* first data packet records the udp flow (the ARP exchange has its
     own flow entries); later packets must replay it *)
  ping 0;
  let h0 = D.path_cache_hits disp_b and m0 = D.path_cache_misses disp_b in
  ping 1;
  ping 2;
  Alcotest.(check int) "steady-state packets hit" (h0 + 2)
    (D.path_cache_hits disp_b);
  Alcotest.(check int) "no steady-state misses" m0
    (D.path_cache_misses disp_b);
  let ether_ev =
    Plexus.Graph.recv_event
      (Plexus.Ether_mgr.node (Plexus.Stack.ether p.Experiments.Common.b))
  in
  Alcotest.(check bool) "flow entry live at the ether root" true
    (D.cache_entries ether_ev >= 1);
  Alcotest.(check (list string))
    "payloads delivered in order"
    [ "ping-0"; "ping-1"; "ping-2" ]
    (List.rev !got)

let stack_exclude_ports_invalidates () =
  let p =
    Experiments.Common.plexus_pair ~flowcache:true (Netsim.Costs.ethernet ())
  in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let got = ref 0 in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"srv" ~port:7 with
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun _ -> incr got)
      in
      ()
  | Error _ -> Alcotest.fail "bind failed");
  let client =
    match Plexus.Udp_mgr.bind udp_a ~owner:"cli" ~port:5000 with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let ping () =
    Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 7) "x";
    Sim.Engine.run p.Experiments.Common.engine
  in
  ping ();
  ping ();
  Alcotest.(check int) "delivered while open" 2 !got;
  (* the exclude list is guard state beyond the flow signature: mutating
     it must invalidate the cached path before the next packet *)
  Plexus.Udp_mgr.exclude_ports udp_b [ 7 ];
  ping ();
  Alcotest.(check int) "excluded port no longer delivered" 2 !got

(* ---- batching -------------------------------------------------------- *)

let pool_reserve_n () =
  let pool = Pool.create ~name:"p" ~capacity:4 () in
  Alcotest.(check int) "full grant" 3 (Pool.reserve_n pool 3);
  Alcotest.(check int) "live tracks grant" 3 (Pool.live pool);
  Alcotest.(check int) "partial grant at capacity" 1 (Pool.reserve_n pool 3);
  Alcotest.(check int) "shortfall counted as failures" 2 (Pool.failures pool);
  Pool.release_n pool 4;
  Alcotest.(check int) "released" 0 (Pool.live pool);
  Alcotest.(check int) "zero grant on empty request" 0 (Pool.reserve_n pool 0);
  Alcotest.check_raises "underflow rejected"
    (Invalid_argument "p: pool slots released twice (double free)") (fun () ->
      Pool.release_n pool 1)

let mk_udp_frame ~dst_mac ~dst_port =
  let m = Mbuf.alloc 64 in
  Proto.Udp.encapsulate ~checksum:true m ~src:Experiments.Common.ip_a
    ~dst:Experiments.Common.ip_b ~src_port:5000 ~dst_port;
  Proto.Ipv4.encapsulate m
    (Proto.Ipv4.make ~id:1 ~proto:Proto.Ipv4.proto_udp
       ~src:Experiments.Common.ip_a ~dst:Experiments.Common.ip_b
       ~payload_len:(Mbuf.length m) ());
  Proto.Ether.encapsulate m
    { Proto.Ether.dst = dst_mac; src = dst_mac; etype = Proto.Ether.etype_ip };
  m

let deliver_batch_through_stack () =
  let p =
    Experiments.Common.plexus_pair ~flowcache:true (Netsim.Costs.ethernet ())
  in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let got = ref 0 in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"srv" ~port:7 with
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun _ -> incr got)
      in
      ()
  | Error _ -> Alcotest.fail "bind failed");
  let dev = Plexus.Ether_mgr.dev (Plexus.Stack.ether p.Experiments.Common.b) in
  let mac = Netsim.Dev.mac dev in
  let frames =
    List.init 8 (fun _ -> Mbuf.ro (mk_udp_frame ~dst_mac:mac ~dst_port:7))
  in
  Netsim.Dev.deliver_batch dev frames;
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "all frames delivered" 8 !got;
  Alcotest.(check int) "batch counted on the device" 8
    (Netsim.Dev.counters dev).Netsim.Dev.rx_packets;
  (* an empty batch is a no-op *)
  Netsim.Dev.deliver_batch dev [];
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "empty batch delivers nothing" 8 !got

let deliver_batch_ring_overflow () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  let mk name mac =
    Netsim.Dev.create e ~cpu ~name ~mac:(Proto.Ether.Mac.of_int mac)
      (Netsim.Costs.ethernet ())
  in
  let a = mk "a" 0x1 and b = mk "b" 0x2 in
  Netsim.Dev.connect a b;
  let pool = Pool.create ~name:"ring" ~capacity:4 () in
  Netsim.Dev.set_rx_pool b pool;
  (* deliver_batch releases the reserved ring slots itself when the
     coalesced interrupt fires — the upcall only consumes the frames *)
  let got = ref 0 in
  Netsim.Dev.set_rx b (fun _ -> incr got);
  let frames = List.init 6 (fun i -> Mbuf.ro (Mbuf.of_string (String.make 60 (Char.chr (65 + i))))) in
  Netsim.Dev.deliver_batch b frames;
  Sim.Engine.run e;
  Alcotest.(check int) "ring grants only its capacity" 4 !got;
  Alcotest.(check int) "overflow counted as rx drops" 2
    (Netsim.Dev.counters b).Netsim.Dev.rx_drops

let raise_batch_amortizes () =
  (* a single event with no nested raises, so the dispatcher-wide raise
     counter isolates the batch's own accounting *)
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  let d = D.create ~cpu ~costs:D.default_costs () in
  D.set_flow_cache d true;
  let ev = D.event d "rx" in
  D.set_sigfn ev (fun v -> Some (string_of_int (v land 3)));
  let log = ref [] in
  let (_ : unit -> unit) =
    D.install ev ~cacheable:true ~label:"h" ~cost:(us 1) (fun v ->
        log := v :: !log)
  in
  let r0 = D.raises d in
  D.raise_batch ev [ 0; 4; 8 ];
  Sim.Engine.run e;
  Alcotest.(check int) "every frame counted as a raise" (r0 + 3) (D.raises d);
  Alcotest.(check (list int)) "per-frame delivery order preserved" [ 0; 4; 8 ]
    (List.rev !log);
  D.raise_batch ev [];
  Sim.Engine.run e;
  Alcotest.(check int) "empty batch raises nothing" (r0 + 3) (D.raises d)

(* The synchronous replay charges its modelled chain cost as a CPU
   reservation: no engine event of its own, but queued and subsequent
   work must wait it out, so latency and utilization accounting are
   unchanged. *)
let cpu_charge_reserves () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  Sim.Cpu.charge cpu ~cost:(us 10);
  Alcotest.(check int) "charge accounted as busy time" 10_000
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu));
  let done_at = ref Sim.Stime.zero in
  Sim.Cpu.run cpu ~cost:(us 5) (fun () -> done_at := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check int) "queued work waits out the reservation" 15_000
    (Sim.Stime.to_ns !done_at);
  Alcotest.(check int) "busy time includes both" 15_000
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu))

(* ---- flow signature -------------------------------------------------- *)

let signature_extraction () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let dev = Plexus.Ether_mgr.dev (Plexus.Stack.ether p.Experiments.Common.b) in
  let mac = Netsim.Dev.mac dev in
  let sig_of m = Plexus.Filter.flow_signature (Plexus.Pctx.make dev (Mbuf.ro m)) in
  let s1 = sig_of (mk_udp_frame ~dst_mac:mac ~dst_port:7) in
  let s2 = sig_of (mk_udp_frame ~dst_mac:mac ~dst_port:7) in
  let s3 = sig_of (mk_udp_frame ~dst_mac:mac ~dst_port:9) in
  Alcotest.(check bool) "signature present on a udp frame" true (s1 <> None);
  Alcotest.(check bool) "same 5-tuple, same signature" true (s1 = s2);
  Alcotest.(check bool) "different port, different signature" true (s1 <> s3);
  (* fragments cannot be summarized: ports belong to the first fragment *)
  let frag = mk_udp_frame ~dst_mac:mac ~dst_port:7 in
  View.set_u16 (Mbuf.view frag) 20 0x2000 (* more-fragments *);
  Alcotest.(check bool) "fragment refused" true (sig_of frag = None);
  (* only a fresh root context is a raw frame the signature describes *)
  let parsed =
    Plexus.Pctx.advance (Plexus.Pctx.make dev (Mbuf.ro (mk_udp_frame ~dst_mac:mac ~dst_port:7))) 14
  in
  Alcotest.(check bool) "non-fresh context refused" true
    (Plexus.Filter.flow_signature parsed = None);
  (* demux and signature agree through the shared extractor *)
  let d =
    Plexus.Filter.frame_demux
      (View.ro (Mbuf.view (mk_udp_frame ~dst_mac:mac ~dst_port:7)))
  in
  Alcotest.(check int) "demux reads the dst port" 7 d.Plexus.Filter.dst_port;
  Alcotest.(check bool) "packed form matches the context signature" true
    (Some (Plexus.Filter.signature_of_demux d) = s1)

let suite =
  [
    ( "flowcache.dispatcher",
      [
        tc "hit replays the same chain" hit_replays_same_chain;
        tc "disabled by default" disabled_by_default;
        tc "uninstall invalidates before the next packet"
          uninstall_invalidates_before_next_packet;
        tc "touch invalidates" touch_invalidates;
        tc "churn during recording discards the entry"
          churn_during_recording_discards_entry;
        tc "churn during replay diverges safely"
          churn_during_replay_diverges_safely;
        prop equivalence_under_churn;
      ] );
    ( "flowcache.stack",
      [
        tc "path_cache counters on the udp fast path" stack_counters;
        tc "exclude_ports invalidates the cached path"
          stack_exclude_ports_invalidates;
      ] );
    ( "flowcache.batching",
      [
        tc "pool reserve_n/release_n" pool_reserve_n;
        tc "deliver_batch through the stack" deliver_batch_through_stack;
        tc "deliver_batch ring overflow" deliver_batch_ring_overflow;
        tc "raise_batch amortizes" raise_batch_amortizes;
        tc "cpu charge reserves" cpu_charge_reserves;
      ] );
    ( "flowcache.signature",
      [ tc "flow signature extraction" signature_extraction ] );
  ]
