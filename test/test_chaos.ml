(* Chaos soak and directed fault-handling regressions.

   The soak tests sweep Experiments.Chaos scenarios across many fixed
   seeds — every run is deterministic, so a failure here is always
   reproducible by seed.  The directed tests pin the individual fixes
   that ride with the fault subsystem: the closed [0,1] loss interval,
   the wire_drops/tx_drops split, admission control accounting, the
   scheduled fragment-reassembly expiry, ARP retry exhaustion, pool
   pressure watermarks and TCP checksum verification. *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t

let ip_a = Proto.Ipaddr.v 10 0 1 1
let ip_b = Proto.Ipaddr.v 10 0 1 2

(* --- soak -------------------------------------------------------------- *)

let soak_seeds = List.init 20 (fun i -> 1000 + i)

let mix_for i =
  if i mod 2 = 0 then Experiments.Chaos.default_mix
  else Experiments.Chaos.burst_mix

let udp_soak () =
  List.iteri
    (fun i seed ->
      let o = Experiments.Chaos.udp_blast ~mix:(mix_for i) ~seed () in
      Alcotest.(check bool)
        (Fmt.str "udp seed %d: %a" seed Experiments.Chaos.pp_udp_outcome o)
        true
        (Experiments.Chaos.udp_ok o))
    soak_seeds

let frag_soak () =
  List.iteri
    (fun i seed ->
      let o = Experiments.Chaos.udp_frag ~mix:(mix_for i) ~seed () in
      Alcotest.(check bool)
        (Fmt.str "frag seed %d: %a" seed Experiments.Chaos.pp_frag_outcome o)
        true
        (Experiments.Chaos.frag_ok o))
    soak_seeds

let tcp_soak () =
  List.iteri
    (fun i seed ->
      let o = Experiments.Chaos.tcp_transfer ~mix:(mix_for i) ~seed () in
      Alcotest.(check bool)
        (Fmt.str "tcp seed %d: %a" seed Experiments.Chaos.pp_tcp_outcome o)
        true
        (Experiments.Chaos.tcp_ok o))
    soak_seeds

(* Cached delivery must be observably equivalent to graph dispatch with
   faults in play: same seed, same fault stream, identical counters. *)
let fcache_equivalence () =
  List.iter
    (fun seed ->
      let plain = Experiments.Chaos.udp_blast ~seed () in
      let cached = Experiments.Chaos.udp_blast ~fcache:true ~seed () in
      Alcotest.(check bool)
        (Fmt.str "seed %d cached ok" seed)
        true
        (Experiments.Chaos.udp_ok cached);
      Alcotest.(check bool)
        (Fmt.str "seed %d equivalent" seed)
        true
        (Experiments.Chaos.udp_equivalent plain cached))
    (List.init 6 (fun i -> 4242 + i))

(* Identical seed, identical outcome — the soak's reproducibility
   guarantee, as a property. *)
let determinism =
  QCheck.Test.make ~count:25 ~name:"chaos outcome is a function of the seed"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      Experiments.Chaos.udp_blast ~count:60 ~seed ()
      = Experiments.Chaos.udp_blast ~count:60 ~seed ())

(* --- directed: loss interval and the wire/tx drop split ---------------- *)

let pair () =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine
      (Netsim.Costs.ethernet ())
      ~a:("hostA", ip_a) ~b:("hostB", ip_b)
  in
  (engine, ea, eb)

let set_loss_interval () =
  let _, ea, _ = pair () in
  let dev = ea.Netsim.Network.dev in
  Netsim.Dev.set_loss dev 0.0;
  Netsim.Dev.set_loss dev 0.5;
  Netsim.Dev.set_loss dev 1.0;
  Alcotest.check_raises "p > 1 rejected" (Invalid_argument "Dev.set_loss")
    (fun () -> Netsim.Dev.set_loss dev 1.01);
  Alcotest.check_raises "p < 0 rejected" (Invalid_argument "Dev.set_loss")
    (fun () -> Netsim.Dev.set_loss dev (-0.01))

(* Total loss: every frame transmits fine (tx_drops stays 0 — that
   counter means queue overflow, nothing else) and dies on the wire. *)
let wire_drops_split () =
  let engine, ea, eb = pair () in
  Netsim.Dev.set_loss ea.Netsim.Network.dev 1.0;
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.prime_arp a b;
  let udp_b = Plexus.Stack.udp b in
  let got = ref 0 in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"sink" ~port:9 with
  | Error _ -> Alcotest.fail "bind"
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun _ -> incr got)
      in
      ());
  let udp_a = Plexus.Stack.udp a in
  (match Plexus.Udp_mgr.bind udp_a ~owner:"src" ~port:5000 with
  | Error _ -> Alcotest.fail "bind"
  | Ok ep ->
      for _ = 1 to 5 do
        Plexus.Udp_mgr.send udp_a ep ~dst:(ip_b, 9) "doomed"
      done);
  Sim.Engine.run engine ~max_events:1_000_000;
  let c = Netsim.Dev.counters ea.Netsim.Network.dev in
  Alcotest.(check int) "nothing arrives" 0 !got;
  Alcotest.(check int) "all transmitted" 5 c.Netsim.Dev.tx_packets;
  Alcotest.(check int) "all lost on the wire" 5 c.Netsim.Dev.wire_drops;
  Alcotest.(check int) "no queue overflow" 0 c.Netsim.Dev.tx_drops

(* --- directed: admission control --------------------------------------- *)

let build_udp_frame ~src_mac ~dst_mac ~dst_port =
  let pkt = Mbuf.of_string (String.make 18 'a') in
  Proto.Udp.encapsulate pkt ~src:ip_a ~dst:ip_b ~src_port:5000 ~dst_port;
  Proto.Ipv4.encapsulate pkt
    (Proto.Ipv4.make ~proto:Proto.Ipv4.proto_udp ~src:ip_a ~dst:ip_b
       ~payload_len:(Mbuf.length pkt) ());
  Proto.Ether.encapsulate pkt
    { Proto.Ether.dst = dst_mac; src = src_mac; etype = Proto.Ether.etype_ip };
  Mbuf.to_string pkt

(* A burst far beyond the interrupt budget: the excess defers (and past
   the queue limit, sheds), every frame is accounted exactly once, and
   the deferred queue fully drains. *)
let admission_accounting () =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.t3 ())
      ~a:("blaster", ip_a) ~b:("victim", ip_b)
  in
  Netsim.Dev.set_admission ~budget:2 ~window:(Sim.Stime.ms 1) ~defer_limit:8
    ~poll_batch:4 eb.Netsim.Network.dev;
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  let udp_b = Plexus.Stack.udp b in
  let got = ref 0 in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"sink" ~port:9 with
  | Error _ -> Alcotest.fail "bind"
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun _ -> incr got)
      in
      ());
  let frame =
    build_udp_frame
      ~src_mac:(Netsim.Dev.mac ea.Netsim.Network.dev)
      ~dst_mac:(Netsim.Dev.mac eb.Netsim.Network.dev)
      ~dst_port:9
  in
  let total = 100 in
  for i = 0 to total - 1 do
    ignore
      (Sim.Engine.schedule engine
         ~at:(Sim.Stime.us (20 * i))
         (fun () ->
           Netsim.Dev.transmit ea.Netsim.Network.dev (Mbuf.of_string frame)))
  done;
  Sim.Engine.run engine ~max_events:5_000_000;
  let c = Netsim.Dev.counters eb.Netsim.Network.dev in
  Alcotest.(check bool) "some frames deferred" true (c.Netsim.Dev.rx_deferred > 0);
  Alcotest.(check bool) "some frames shed" true (c.Netsim.Dev.rx_shed > 0);
  Alcotest.(check int) "every frame accounted once" total
    (c.Netsim.Dev.rx_packets + c.Netsim.Dev.rx_shed);
  Alcotest.(check int) "deferred queue drained" 0
    (Netsim.Dev.admission_backlog eb.Netsim.Network.dev);
  Alcotest.(check int) "delivered = serviced" c.Netsim.Dev.rx_packets !got

(* --- directed: scheduled fragment expiry ------------------------------- *)

(* A lone first fragment: no further fragment ever arrives, so only the
   scheduled timer can reclaim the reassembly context — and once it has,
   the timer must go quiet (the engine drains instead of ticking to the
   event cap). *)
let frag_train_times_out () =
  let engine, ea, eb = pair () in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  let pkt = Mbuf.of_string (String.make 64 'f') in
  Proto.Ipv4.encapsulate pkt
    (Proto.Ipv4.make ~id:77 ~more_fragments:true ~frag_offset:0
       ~proto:Proto.Ipv4.proto_udp ~src:ip_a ~dst:ip_b ~payload_len:64 ());
  Proto.Ether.encapsulate pkt
    {
      Proto.Ether.dst = Netsim.Dev.mac eb.Netsim.Network.dev;
      src = Netsim.Dev.mac ea.Netsim.Network.dev;
      etype = Proto.Ether.etype_ip;
    };
  Netsim.Dev.transmit ea.Netsim.Network.dev pkt;
  Sim.Engine.run engine ~max_events:1_000_000;
  let frag = Plexus.Ip_mgr.frag_state (Plexus.Stack.ip b) in
  Alcotest.(check int) "reassembly timed out" 1 (Proto.Ip_frag.timeout_count frag);
  Alcotest.(check int) "slots released" 0 (Proto.Ip_frag.pending_count frag);
  (* the timer fired once at the 30 s deadline and then disarmed: the
     engine drained just past it, not at the event cap *)
  let now = Sim.Stime.to_us (Sim.Engine.now engine) in
  Alcotest.(check bool)
    (Printf.sprintf "drained just past the deadline (%.0fus)" now)
    true
    (now >= 30e6 && now < 35e6)

(* --- directed: ARP retry exhaustion ------------------------------------ *)

(* 100%% loss toward the target: the resolver must stop after
   max_retries, remove the pending entry, surface the failure, cancel
   the queued continuations, and leave no timer behind (the engine
   drains). *)
let arp_retry_exhaustion () =
  let engine, ea, eb = pair () in
  Netsim.Dev.set_loss ea.Netsim.Network.dev 1.0;
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let _b = Plexus.Stack.build eb.Netsim.Network.host in
  let arp = Plexus.Stack.arp a in
  let resolved = ref 0 in
  Plexus.Arp_mgr.resolve arp ip_b (fun _ -> incr resolved);
  Sim.Engine.run engine ~max_events:1_000_000;
  Alcotest.(check int) "requests = max_retries" 3
    (Plexus.Arp_mgr.requests_sent arp);
  Alcotest.(check int) "failure surfaced" 1
    (Plexus.Arp_mgr.resolution_failures arp);
  Alcotest.(check int) "pending removed" 0 (Plexus.Arp_mgr.pending_count arp);
  Alcotest.(check int) "continuation cancelled" 1
    (Plexus.Arp_mgr.waiters_dropped arp);
  Alcotest.(check int) "no queued waiter left" 0
    (Proto.Arp.Cache.waiting_count (Plexus.Arp_mgr.cache arp) ip_b);
  Alcotest.(check int) "continuation never fired" 0 !resolved;
  (* engine drained: nothing past the last retry *)
  Alcotest.(check bool) "no leaked timer" true
    (Sim.Stime.to_us (Sim.Engine.now engine) < 5e6);
  (* a reply arriving long after abandonment must not fire the stale
     continuation (it was cancelled) *)
  Proto.Arp.Cache.insert (Plexus.Arp_mgr.cache arp)
    ~now:(Sim.Engine.now engine) ip_b (Proto.Ether.Mac.of_int 0xbbbb);
  Alcotest.(check int) "late reply fires nothing" 0 !resolved

(* A reply landing between retries resolves immediately, fires the
   continuation exactly once, and stops the retry chain. *)
let arp_reply_between_retries () =
  let engine, ea, eb = pair () in
  Netsim.Dev.set_loss ea.Netsim.Network.dev 1.0;
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let _b = Plexus.Stack.build eb.Netsim.Network.host in
  let arp = Plexus.Stack.arp a in
  let resolved = ref 0 in
  Plexus.Arp_mgr.resolve arp ip_b (fun _ -> incr resolved);
  (* an unsolicited reply from B, injected on the clean b -> a direction
     between the first retry (t = 1 s) and the second (t = 2 s) *)
  ignore
    (Sim.Engine.schedule engine ~at:(Sim.Stime.ms 1500) (fun () ->
         let reply =
           Proto.Arp.reply_to
             (Proto.Arp.request
                ~sender_mac:(Netsim.Dev.mac ea.Netsim.Network.dev)
                ~sender_ip:ip_a ~target_ip:ip_b)
             ~mac:(Netsim.Dev.mac eb.Netsim.Network.dev)
         in
         let pkt = Proto.Arp.to_packet reply in
         Proto.Ether.encapsulate pkt
           {
             Proto.Ether.dst = Netsim.Dev.mac ea.Netsim.Network.dev;
             src = Netsim.Dev.mac eb.Netsim.Network.dev;
             etype = Proto.Ether.etype_arp;
           };
         Netsim.Dev.transmit eb.Netsim.Network.dev pkt));
  Sim.Engine.run engine ~max_events:1_000_000;
  Alcotest.(check int) "continuation fired once" 1 !resolved;
  Alcotest.(check int) "retries stopped after the reply" 2
    (Plexus.Arp_mgr.requests_sent arp);
  Alcotest.(check int) "no failure" 0 (Plexus.Arp_mgr.resolution_failures arp);
  Alcotest.(check int) "pending removed" 0 (Plexus.Arp_mgr.pending_count arp)

(* --- directed: pool pressure watermarks -------------------------------- *)

let pool_pressure () =
  let pool = Pool.create ~name:"t" ~capacity:8 () in
  let events = ref [] in
  Pool.set_pressure pool ~hi:0.75 ~lo:0.5 (fun high -> events := high :: !events);
  for _ = 1 to 5 do
    ignore (Pool.reserve pool)
  done;
  Alcotest.(check bool) "below hi watermark" false (Pool.pressured pool);
  ignore (Pool.reserve pool);
  (* live = 6 = ceil(0.75 * 8) *)
  Alcotest.(check bool) "at hi watermark" true (Pool.pressured pool);
  Pool.release pool;
  Alcotest.(check bool) "hysteresis: still pressured above lo" true
    (Pool.pressured pool);
  Pool.release pool;
  (* live = 4 = floor(0.5 * 8) *)
  Alcotest.(check bool) "released at lo watermark" false (Pool.pressured pool);
  ignore (Pool.reserve_n pool 2);
  Alcotest.(check bool) "pressured again" true (Pool.pressured pool);
  Alcotest.(check int) "two onset events" 2 (Pool.pressure_events pool);
  Alcotest.(check (list bool)) "callback saw on/off/on" [ true; false; true ]
    (List.rev !events);
  Alcotest.check_raises "hi > 1 rejected"
    (Invalid_argument "Pool.set_pressure: watermarks") (fun () ->
      Pool.set_pressure pool ~hi:1.5 (fun _ -> ()));
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Pool.set_pressure: watermarks") (fun () ->
      Pool.set_pressure pool ~hi:0.5 ~lo:0.7 (fun _ -> ()))

(* --- directed: TCP checksum verification ------------------------------- *)

(* A corrupted segment must be rejected by checksum before connection
   demux — never routed by its (possibly corrupted) ports. *)
let tcp_bad_checksum_dropped () =
  let engine, ea, eb = pair () in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  let seg hdr payload ~corrupt =
    let pkt = Proto.Tcp_wire.to_packet ~src:ip_a ~dst:ip_b hdr payload in
    if corrupt then begin
      let v = Mbuf.view pkt in
      (* flip a payload byte, past the 20B TCP header *)
      View.set_u8 v 22 (View.get_u8 v 22 lxor 0x40)
    end;
    Proto.Ipv4.encapsulate pkt
      (Proto.Ipv4.make ~proto:Proto.Ipv4.proto_tcp ~src:ip_a ~dst:ip_b
         ~payload_len:(Mbuf.length pkt) ());
    Proto.Ether.encapsulate pkt
      {
        Proto.Ether.dst = Netsim.Dev.mac eb.Netsim.Network.dev;
        src = Netsim.Dev.mac ea.Netsim.Network.dev;
        etype = Proto.Ether.etype_ip;
      };
    pkt
  in
  let hdr =
    {
      Proto.Tcp_wire.src_port = 1234;
      dst_port = 80;
      seq = Proto.Tcp_wire.Seq.of_int 1;
      ack = Proto.Tcp_wire.Seq.of_int 0;
      flags = Proto.Tcp_wire.Flags.ack;
      window = 100;
    }
  in
  Netsim.Dev.transmit ea.Netsim.Network.dev (seg hdr "corrupt-me" ~corrupt:true);
  Netsim.Dev.transmit ea.Netsim.Network.dev (seg hdr "valid-one" ~corrupt:false);
  Sim.Engine.run engine ~max_events:1_000_000;
  let c = Plexus.Tcp_mgr.counters (Plexus.Stack.tcp b) in
  Alcotest.(check int) "both segments reached tcp" 2 c.Plexus.Tcp_mgr.rx;
  Alcotest.(check int) "corrupted one caught by checksum" 1
    c.Plexus.Tcp_mgr.bad_checksum;
  (* only the valid segment proceeded to demux (and found no conn) *)
  Alcotest.(check int) "valid one demuxed" 1 c.Plexus.Tcp_mgr.no_match

let suite =
  [
    ( "chaos-soak",
      [
        tc "udp blast across 20 seeds" udp_soak;
        tc "fragmented udp across 20 seeds" frag_soak;
        tc "tcp transfer across 20 seeds" tcp_soak;
        tc "flow cache equivalent under faults" fcache_equivalence;
        prop determinism;
      ] );
    ( "faults-directed",
      [
        tc "set_loss accepts the closed [0,1] interval" set_loss_interval;
        tc "total loss lands in wire_drops, not tx_drops" wire_drops_split;
        tc "admission control accounts every frame" admission_accounting;
        tc "half-delivered fragment train times out" frag_train_times_out;
        tc "arp retry exhaustion under 100% loss" arp_retry_exhaustion;
        tc "arp reply between retries" arp_reply_between_retries;
        tc "pool pressure watermarks" pool_pressure;
        tc "tcp checksum verified before demux" tcp_bad_checksum_dropped;
      ] );
  ]
