(* Regression tests for the paper's qualitative claims: the *shapes* of
   every figure and table must hold whenever the cost model changes. *)

let stc name f = Alcotest.test_case name `Slow f

(* Figure 5: for every device, interrupt < thread < DIGITAL UNIX, and the
   raw driver-to-driver minimum is below everything. *)
let fig5_orderings () =
  List.iter
    (fun (r : Experiments.Fig5.row) ->
      let d = r.Experiments.Fig5.device in
      Alcotest.(check bool)
        (d ^ ": interrupt faster than thread")
        true
        (r.Experiments.Fig5.plexus_interrupt < r.Experiments.Fig5.plexus_thread);
      Alcotest.(check bool)
        (d ^ ": plexus faster than DIGITAL UNIX")
        true
        (r.Experiments.Fig5.plexus_thread < r.Experiments.Fig5.digital_unix);
      Alcotest.(check bool)
        (d ^ ": raw driver below plexus")
        true
        (r.Experiments.Fig5.raw_driver < r.Experiments.Fig5.plexus_interrupt);
      match r.Experiments.Fig5.paper_plexus with
      | Some paper ->
          let ratio = r.Experiments.Fig5.plexus_interrupt /. paper in
          Alcotest.(check bool)
            (Printf.sprintf "%s: within 20%% of the paper (%.2f)" d ratio)
            true
            (ratio > 0.8 && ratio < 1.2)
      | None -> ())
    (Experiments.Fig5.run ~iters:30 ())

let fig5_device_ordering () =
  let rows = Experiments.Fig5.run ~iters:30 () in
  let get d =
    (List.find (fun r -> r.Experiments.Fig5.device = d) rows)
      .Experiments.Fig5.plexus_interrupt
  in
  Alcotest.(check bool) "t3 < atm < ethernet" true
    (get "t3" < get "atm" && get "atm" < get "ethernet")

(* Section 4.2: Ethernet wire-limited and equal; ATM CPU-limited with
   Plexus ahead of DIGITAL UNIX. *)
let tput_shape () =
  let rows = Experiments.Tput.run ~bytes:500_000 () in
  let get d = List.find (fun r -> r.Experiments.Tput.device = d) rows in
  let eth = get "ethernet" in
  Alcotest.(check bool)
    (Printf.sprintf "ethernet within 10%% of 8.9 (%.1f)" eth.Experiments.Tput.plexus_mbps)
    true
    (abs_float (eth.Experiments.Tput.plexus_mbps -. 8.9) < 0.9);
  Alcotest.(check bool) "ethernet roughly equal on both systems" true
    (abs_float (eth.Experiments.Tput.plexus_mbps -. eth.Experiments.Tput.du_mbps)
     /. eth.Experiments.Tput.plexus_mbps
    < 0.1);
  let atm = get "atm" in
  Alcotest.(check bool)
    (Printf.sprintf "plexus beats DU on ATM (%.1f vs %.1f)"
       atm.Experiments.Tput.plexus_mbps atm.Experiments.Tput.du_mbps)
    true
    (atm.Experiments.Tput.plexus_mbps > atm.Experiments.Tput.du_mbps *. 1.1);
  Alcotest.(check bool) "ATM below the PIO ceiling" true
    (atm.Experiments.Tput.plexus_mbps < 53.)

(* Figure 6: SPIN uses about half the CPU; the network saturates at 15
   streams for both. *)
let fig6_shape () =
  let rows = Experiments.Fig6.run ~stream_counts:[ 5; 15; 20 ] () in
  let get n = List.find (fun s -> s.Experiments.Fig6.streams = n) rows in
  let s15 = get 15 in
  let ratio = s15.Experiments.Fig6.du_util /. s15.Experiments.Fig6.spin_util in
  Alcotest.(check bool)
    (Printf.sprintf "DU uses ~2x the CPU at 15 streams (%.2fx)" ratio)
    true
    (ratio > 1.6 && ratio < 3.0);
  Alcotest.(check bool)
    (Printf.sprintf "network saturated at 15 streams (%.1f Mb/s)"
       s15.Experiments.Fig6.net_mbps)
    true
    (s15.Experiments.Fig6.net_mbps > 40.);
  let s20 = get 20 in
  Alcotest.(check bool) "no more throughput past saturation" true
    (s20.Experiments.Fig6.net_mbps <= s15.Experiments.Fig6.net_mbps +. 1.);
  let s5 = get 5 in
  Alcotest.(check bool) "utilization grows with load" true
    (s5.Experiments.Fig6.spin_util < s15.Experiments.Fig6.spin_util)

(* Figure 7: the in-kernel forwarder beats the user-level splice at every
   payload size. *)
let fig7_shape () =
  let rows = Experiments.Fig7.run ~warmup:3 ~iters:15 () in
  List.iter
    (fun (r : Experiments.Fig7.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "plexus wins at %d bytes (%.0f vs %.0f)"
           r.Experiments.Fig7.payload r.Experiments.Fig7.plexus_us
           r.Experiments.Fig7.du_us)
        true
        (r.Experiments.Fig7.plexus_us < r.Experiments.Fig7.du_us))
    rows;
  (* latency grows with payload on both systems *)
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "plexus grows with size" true
    (first.Experiments.Fig7.plexus_us < last.Experiments.Fig7.plexus_us);
  Alcotest.(check bool) "du grows with size" true
    (first.Experiments.Fig7.du_us < last.Experiments.Fig7.du_us)

(* Section 3.3: active messages at interrupt level beat both thread-mode
   AM and the full UDP stack. *)
let micro_shape () =
  let r = Experiments.Micro.run ~iters:50 () in
  Alcotest.(check bool) "interrupt AM < thread AM" true
    (r.Experiments.Micro.interrupt_rtt < r.Experiments.Micro.thread_rtt);
  Alcotest.(check bool) "AM < full UDP stack" true
    (r.Experiments.Micro.interrupt_rtt < r.Experiments.Micro.udp_rtt)

(* Ablations: unkeyed guard cost grows slowly with bystanders while the
   dispatch index stays flat; overwrite is the fast spoof policy;
   disabling the checksum saves time on big frames. *)
let ablate_shape () =
  let gs = Experiments.Ablate.guard_scaling ~counts:[ 0; 64 ] ~iters:30 () in
  (match gs with
  | [ g0; g64 ] ->
      let slope =
        (g64.Experiments.Ablate.rtt_us -. g0.Experiments.Ablate.rtt_us) /. 64.
      in
      Alcotest.(check bool)
        (Printf.sprintf "guard slope small but nonzero (%.2fus/guard)" slope)
        true
        (slope > 0.05 && slope < 2.0);
      let islope =
        (g64.Experiments.Ablate.indexed_rtt_us
        -. g0.Experiments.Ablate.indexed_rtt_us)
        /. 64.
      in
      Alcotest.(check bool)
        (Printf.sprintf "indexed dispatch flat (%.3fus/guard)" islope)
        true
        (Float.abs islope < 0.05)
  | _ -> Alcotest.fail "wrong shape");
  let s = Experiments.Ablate.spoof_policy ~iters:30 () in
  Alcotest.(check bool) "overwrite is at least as fast" true
    (s.Experiments.Ablate.overwrite_rtt <= s.Experiments.Ablate.verify_rtt);
  Alcotest.(check int) "forged send rejected under verify" 1
    s.Experiments.Ablate.spoofs_rejected;
  let c = Experiments.Ablate.cksum_variant ~iters:30 () in
  Alcotest.(check bool) "checksum off is faster" true
    (c.Experiments.Ablate.without_cksum < c.Experiments.Ablate.with_cksum)

let suite =
  [
    ( "experiments.shapes",
      [
        stc "fig5 orderings and calibration" fig5_orderings;
        stc "fig5 device ordering" fig5_device_ordering;
        stc "tput shape" tput_shape;
        stc "fig6 shape" fig6_shape;
        stc "fig7 shape" fig7_shape;
        stc "micro shape" micro_shape;
        stc "ablation shape" ablate_shape;
      ] );
  ]

(* §5.1 client side: similar utilization on both systems, dominated by
   framebuffer writes. *)
let fig6_client_shape () =
  let c = Experiments.Fig6.client ~streams:3 () in
  let ratio = c.Experiments.Fig6.du_util /. c.Experiments.Fig6.plexus_util in
  Alcotest.(check bool)
    (Printf.sprintf "similar utilization (%.2fx)" ratio)
    true
    (ratio > 0.85 && ratio < 1.25);
  Alcotest.(check bool)
    (Printf.sprintf "framebuffer dominates (%.0f%%)"
       (100. *. c.Experiments.Fig6.plexus_fb_share))
    true
    (c.Experiments.Fig6.plexus_fb_share > 0.6)

let suite =
  suite
  @ [
      ( "experiments.client_side",
        [ stc "fig6 client similarity" fig6_client_shape ] );
    ]
