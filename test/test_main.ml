(* Test entry point: every suite from every library. *)
let () =
  Alcotest.run "plexus"
    (Test_sim.suite @ Test_packet.suite @ Test_datapath.suite
   @ Test_spin.suite @ Test_proto.suite
   @ Test_netsim.suite @ Test_plexus.suite @ Test_osmodel.suite
   @ Test_apps.suite @ Test_features.suite @ Test_more.suite @ Test_fuzz.suite
   @ Test_experiments.suite @ Test_observe.suite @ Test_flowcache.suite
   @ Test_chaos.suite @ Test_scale.suite @ Test_parallel.suite
   @ Test_lifecycle.suite)
