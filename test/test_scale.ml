(* Million-flow steady-state structures: the hierarchical timer wheel
   (equivalence with the Pheap oracle, true cancellation), the sharded
   flow tables and CLOCK cache, and ephemeral port allocation. *)

let us = Sim.Stime.us

(* ---- timer wheel ----------------------------------------------------- *)

(* Oracle equivalence: the wheel must fire in exactly the (key, seq)
   order of the stable binary heap, under arbitrary interleavings of
   schedule, cancel and pop (a reschedule is a cancel + schedule). *)
type op = Add of int | Cancel of int | Pop

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun d -> Add d) (int_bound 5000));
        (2, map (fun i -> Cancel i) (int_bound 500));
        (3, return Pop);
      ])

let op_print = function
  | Add d -> Printf.sprintf "Add %d" d
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | Pop -> "Pop"

let wheel_matches_pheap ops =
  let wheel = Sim.Timer_wheel.create () in
  let heap = Sim.Pheap.create () in
  (* mirror entries: wheel node + a cancelled flag read at heap pop *)
  let nodes = ref [] (* (id, node) newest first *) in
  let cancelled = Hashtbl.create 16 in
  let next_id = ref 0 in
  let ok = ref true in
  let rec heap_pop () =
    match Sim.Pheap.pop_min heap with
    | None -> None
    | Some (k, id) ->
        if Hashtbl.mem cancelled id then heap_pop () else Some (k, id)
  in
  List.iter
    (fun op ->
      match op with
      | Add d ->
          let key = Sim.Timer_wheel.horizon wheel + d in
          let id = !next_id in
          incr next_id;
          let n = Sim.Timer_wheel.add wheel ~key id in
          nodes := (id, n) :: !nodes;
          Sim.Pheap.add heap ~key id
      | Cancel i -> (
          (* cancel the i-th most recent still-live entry, if any *)
          match
            List.filteri (fun j _ -> j = i)
              (List.filter (fun (_, n) -> Sim.Timer_wheel.is_live n) !nodes)
          with
          | [ (id, n) ] ->
              Sim.Timer_wheel.cancel n;
              Sim.Timer_wheel.cancel n (* idempotent *)
              ;
              Hashtbl.replace cancelled id ()
          | _ -> ())
      | Pop ->
          let w = Sim.Timer_wheel.pop_min wheel in
          let h = heap_pop () in
          if w <> h then ok := false)
    ops;
  (* drain both: remainders must agree too *)
  let rec drain () =
    match (Sim.Timer_wheel.pop_min wheel, heap_pop ()) with
    | None, None -> ()
    | w, h ->
        if w <> h then ok := false
        else drain ()
  in
  drain ();
  !ok && Sim.Timer_wheel.is_empty wheel

let wheel_oracle_qcheck =
  QCheck.Test.make ~count:300 ~name:"timer wheel fires in pheap order"
    QCheck.(make ~print:(fun l -> String.concat "; " (List.map op_print l))
              Gen.(list_size (0 -- 200) op_gen))
    wheel_matches_pheap

let wheel_long_range () =
  (* deadlines spread over many wheel levels, popped in order *)
  let w = Sim.Timer_wheel.create () in
  let keys =
    [ 1; 31; 32; 33; 1_000; 32_768; 1_000_000; 123_456_789;
      1_000_000_000_000; 4611686018427387903 (* max_int/2: level 12 *) ]
  in
  List.iter (fun k -> ignore (Sim.Timer_wheel.add w ~key:k k)) keys;
  let popped = ref [] in
  let rec go () =
    match Sim.Timer_wheel.pop_min w with
    | None -> ()
    | Some (k, _) ->
        popped := k :: !popped;
        go ()
  in
  go ();
  Alcotest.(check (list int)) "sorted across levels" (List.sort compare keys)
    (List.rev !popped)

let wheel_mass_cancel () =
  (* 100k pending, mass-cancel, wheel must be observably empty *)
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let handles =
    List.init 100_000 (fun i ->
        Sim.Engine.schedule e ~at:(us (1 + (i mod 997))) (fun () -> incr fired))
  in
  Alcotest.(check int) "100k pending" 100_000 (Sim.Engine.pending e);
  List.iter Sim.Engine.cancel handles;
  Alcotest.(check int) "pending reports only live events" 0
    (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check int) "nothing fires" 0 !fired;
  Alcotest.(check int) "no events counted" 0 (Sim.Engine.events_run e)

let wheel_cancel_drops_thunk () =
  (* a cancelled event's closure is released eagerly: the weak pointer
     to its environment dies before the deadline is reached *)
  let e = Sim.Engine.create () in
  let payload = ref (Some (String.make 1024 'x')) in
  let wp = Weak.create 1 in
  (match !payload with Some s -> Weak.set wp 0 (Some s) | None -> ());
  let h =
    Sim.Engine.schedule e ~at:(us 1000) (fun () ->
        match !payload with Some s -> ignore (String.length s) | None -> ())
  in
  payload := None;
  Sim.Engine.cancel h;
  Gc.full_major ();
  Alcotest.(check bool) "closure environment collected" false
    (Weak.check wp 0);
  Sim.Engine.run e

let engine_behind_horizon () =
  (* run ~until peeks past the horizon; a later schedule between the
     horizon and the next pending event must still fire, in order *)
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~at:(us 100) (fun () -> log := 100 :: !log));
  Sim.Engine.run e ~until:(us 50);
  (* the wheel's horizon has advanced to 100us; schedule inside (50,100) *)
  ignore (Sim.Engine.schedule e ~at:(us 60) (fun () -> log := 60 :: !log));
  ignore (Sim.Engine.schedule e ~at:(us 80) (fun () -> log := 80 :: !log));
  Alcotest.(check int) "three pending" 3 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "order preserved" [ 60; 80; 100 ]
    (List.rev !log)

(* ---- sharded table ---------------------------------------------------- *)

let table_basics () =
  let t = Spin.Sharded.Table.create ~shards:4 ~hash:Hashtbl.hash () in
  Alcotest.(check int) "shards round to pow2" 4
    (Spin.Sharded.Table.shard_count t);
  for i = 0 to 999 do
    Spin.Sharded.Table.replace t i (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Spin.Sharded.Table.length t);
  Alcotest.(check (option int)) "find" (Some 84)
    (Spin.Sharded.Table.find_opt t 42);
  Spin.Sharded.Table.remove t 42;
  Alcotest.(check bool) "removed" false (Spin.Sharded.Table.mem t 42);
  Alcotest.(check int) "length after remove" 999
    (Spin.Sharded.Table.length t);
  let sum = Spin.Sharded.Table.fold (fun k _ acc -> acc + k) t 0 in
  Alcotest.(check int) "fold visits every shard" (499500 - 42) sum;
  Alcotest.(check bool) "no shard holds everything" true
    (Spin.Sharded.Table.max_shard_size t < 999)

let cache_eviction () =
  let ev = ref 0 in
  let c = Spin.Sharded.Cache.create ~shards:1 ~per_shard:8 ~evictions:ev () in
  Alcotest.(check int) "capacity" 8 (Spin.Sharded.Cache.capacity c);
  for i = 0 to 7 do
    Spin.Sharded.Cache.put c (string_of_int i) i
  done;
  Alcotest.(check int) "full" 8 (Spin.Sharded.Cache.length c);
  Alcotest.(check int) "no eviction below capacity" 0 !ev;
  (* keep "0" hot so CLOCK passes over it *)
  Alcotest.(check (option int)) "hit" (Some 0)
    (Spin.Sharded.Cache.find_opt c "0");
  Spin.Sharded.Cache.put c "8" 8;
  Alcotest.(check int) "bounded" 8 (Spin.Sharded.Cache.length c);
  Alcotest.(check int) "one eviction" 1 !ev;
  Alcotest.(check (option int)) "new entry present" (Some 8)
    (Spin.Sharded.Cache.find_opt c "8");
  Spin.Sharded.Cache.remove c "8";
  Alcotest.(check (option int)) "remove" None
    (Spin.Sharded.Cache.find_opt c "8");
  Spin.Sharded.Cache.put c "9" 9;
  Alcotest.(check int) "hole reused, no eviction" 1 !ev

let cache_clock_keeps_hot () =
  let c = Spin.Sharded.Cache.create ~shards:1 ~per_shard:8 () in
  for i = 0 to 7 do
    Spin.Sharded.Cache.put c (string_of_int i) i
  done;
  (* first overflow sweeps every reference bit clear and evicts one *)
  Spin.Sharded.Cache.put c "8" 8;
  Alcotest.(check int) "one eviction so far" 1
    (Spin.Sharded.Cache.evictions c);
  (* re-reference every survivor except "2": the next insert must pass
     over the hot entries and claim the cold one *)
  List.iter
    (fun k -> ignore (Spin.Sharded.Cache.find_opt c k))
    [ "1"; "3"; "4"; "5"; "6"; "7"; "8" ];
  Spin.Sharded.Cache.put c "9" 9;
  Alcotest.(check (option int)) "cold entry evicted" None
    (Spin.Sharded.Cache.find_opt c "2");
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (k ^ " survives") true
        (Spin.Sharded.Cache.find_opt c k <> None))
    [ "1"; "3"; "4"; "5"; "6"; "7"; "8"; "9" ]

let cache_grows () =
  let c = Spin.Sharded.Cache.create ~shards:1 ~per_shard:1024 () in
  for i = 0 to 999 do
    Spin.Sharded.Cache.put c (string_of_int i) i
  done;
  Alcotest.(check int) "grew without eviction" 1000
    (Spin.Sharded.Cache.length c);
  Alcotest.(check int) "no evictions" 0 (Spin.Sharded.Cache.evictions c);
  for i = 0 to 999 do
    Alcotest.(check bool) "still present" true
      (Spin.Sharded.Cache.find_opt c (string_of_int i) <> None)
  done

(* ---- rng ------------------------------------------------------------- *)

let pareto_support =
  QCheck.Test.make ~name:"pareto stays on [scale, inf)" QCheck.small_int
    (fun seed ->
      let r = Sim.Rng.create seed in
      List.for_all
        (fun _ -> Sim.Rng.pareto r ~shape:1.2 ~scale:3.0 >= 3.0)
        (List.init 50 Fun.id))

(* ---- tcp ephemeral ports ---------------------------------------------- *)

let eph_range = 60999 - 32768 + 1

let ephemeral_exhaustion () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let tcp = Plexus.Stack.tcp p.Experiments.Common.a in
  let dst = (Experiments.Common.ip_b, 80) in
  let first = ref None in
  for _ = 1 to eph_range do
    match Plexus.Tcp_mgr.connect tcp ~owner:"t" ~dst () with
    | Ok c -> if !first = None then first := Some c
    | Error _ -> Alcotest.fail "allocation failed before exhaustion"
  done;
  (* every port now holds a live connection to this destination *)
  (match Plexus.Tcp_mgr.connect tcp ~owner:"t" ~dst () with
  | Error `Ephemeral_exhausted -> ()
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error (`Port_in_use _) -> Alcotest.fail "wrong error");
  Alcotest.(check int) "exhaustion counted" 1
    (Plexus.Tcp_mgr.counters tcp).Plexus.Tcp_mgr.eph_exhausted;
  (* a different destination tuple is unaffected *)
  (match
     Plexus.Tcp_mgr.connect tcp ~owner:"t"
       ~dst:(Experiments.Common.ip_b, 81) ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "tuple reuse should allow other destinations");
  (* releasing one connection frees its port for the exhausted tuple *)
  (match !first with Some c -> Plexus.Tcp_mgr.abort c | None -> ());
  match Plexus.Tcp_mgr.connect tcp ~owner:"t" ~dst () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "closed connection should free its port"

let explicit_port_released () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let tcp = Plexus.Stack.tcp p.Experiments.Common.a in
  let dst = (Experiments.Common.ip_b, 80) in
  let c1 =
    match Plexus.Tcp_mgr.connect tcp ~owner:"t" ~src_port:5555 ~dst () with
    | Ok c -> c
    | Error _ -> Alcotest.fail "explicit connect"
  in
  (match Plexus.Tcp_mgr.connect tcp ~owner:"t" ~src_port:5555 ~dst () with
  | Error (`Port_in_use 5555) -> ()
  | _ -> Alcotest.fail "live explicit port must conflict");
  Plexus.Tcp_mgr.abort c1;
  match Plexus.Tcp_mgr.connect tcp ~owner:"t" ~src_port:5555 ~dst () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "explicit port must be released on close"

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "scale.timer_wheel",
      [
        prop wheel_oracle_qcheck;
        tc "keys across all levels" wheel_long_range;
        tc "100k pending, mass cancel" wheel_mass_cancel;
        tc "cancel drops the closure eagerly" wheel_cancel_drops_thunk;
        tc "schedule behind a peeked horizon" engine_behind_horizon;
      ] );
    ( "scale.sharded",
      [
        tc "table basics" table_basics;
        tc "cache bounded with eviction" cache_eviction;
        tc "clock keeps referenced entries" cache_clock_keeps_hot;
        tc "cache grows to capacity first" cache_grows;
      ] );
    ( "scale.workload",
      [ prop pareto_support ] );
    ( "scale.ephemeral",
      [
        tc "exhaustion surfaces and frees on close" ephemeral_exhaustion;
        tc "explicit port released on close" explicit_port_released;
      ] );
  ]
