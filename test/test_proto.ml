(* Tests for the protocol library: wire codecs, fragmentation, ARP,
   Byteq, HTTP, and the TCP engine under an in-memory lossy wire. *)

let tc name f = Alcotest.test_case name `Quick f
let stc name f = Alcotest.test_case name `Slow f
let prop t = QCheck_alcotest.to_alcotest t

let ip_a = Proto.Ipaddr.v 10 0 0 1
let ip_b = Proto.Ipaddr.v 10 0 0 2

(* ---- Ipaddr ---------------------------------------------------------- *)

let ipaddr_roundtrip () =
  Alcotest.(check string) "to_string" "10.1.2.3"
    (Proto.Ipaddr.to_string (Proto.Ipaddr.v 10 1 2 3));
  Alcotest.(check bool) "of_string" true
    (Proto.Ipaddr.equal (Proto.Ipaddr.of_string "192.168.0.1")
       (Proto.Ipaddr.v 192 168 0 1));
  Alcotest.check_raises "bad format" (Invalid_argument "Ipaddr.of_string")
    (fun () -> ignore (Proto.Ipaddr.of_string "not-an-ip"))

let ipaddr_subnet () =
  let net = Proto.Ipaddr.v 10 0 1 0 in
  Alcotest.(check bool) "in subnet" true
    (Proto.Ipaddr.in_subnet (Proto.Ipaddr.v 10 0 1 77) ~net ~mask_bits:24);
  Alcotest.(check bool) "not in subnet" false
    (Proto.Ipaddr.in_subnet (Proto.Ipaddr.v 10 0 2 77) ~net ~mask_bits:24);
  Alcotest.(check bool) "mask 0 matches all" true
    (Proto.Ipaddr.in_subnet (Proto.Ipaddr.v 1 2 3 4) ~net ~mask_bits:0)

(* ---- Ether ----------------------------------------------------------- *)

let ether_roundtrip () =
  let h =
    {
      Proto.Ether.dst = Proto.Ether.Mac.of_int 0x112233445566;
      src = Proto.Ether.Mac.of_int 0xaabbccddeeff;
      etype = Proto.Ether.etype_ip;
    }
  in
  let v = View.create Proto.Ether.header_len in
  Proto.Ether.write v h;
  (match Proto.Ether.parse (View.ro v) with
  | Some h' ->
      Alcotest.(check bool) "dst" true (Proto.Ether.Mac.equal h.dst h'.Proto.Ether.dst);
      Alcotest.(check bool) "src" true (Proto.Ether.Mac.equal h.src h'.Proto.Ether.src);
      Alcotest.(check int) "etype" h.etype h'.Proto.Ether.etype
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check (option reject)) "too short" None
    (Proto.Ether.parse (View.ro (View.create 5)) |> Option.map ignore)

let ether_mac_pp () =
  Alcotest.(check string) "mac string" "01:02:03:04:05:06"
    (Proto.Ether.Mac.to_string (Proto.Ether.Mac.of_int 0x010203040506))

let ether_encapsulate () =
  let pkt = Mbuf.of_string "payload" in
  Proto.Ether.encapsulate pkt
    { Proto.Ether.dst = Proto.Ether.Mac.broadcast;
      src = Proto.Ether.Mac.of_int 1; etype = 0x0800 };
  Alcotest.(check int) "grew by header" (7 + 14) (Mbuf.length pkt)

(* ---- Ipv4 ------------------------------------------------------------ *)

let ipv4_roundtrip () =
  let h =
    Proto.Ipv4.make ~tos:0 ~id:77 ~ttl:32 ~proto:Proto.Ipv4.proto_udp ~src:ip_a
      ~dst:ip_b ~payload_len:100 ()
  in
  let v = View.create Proto.Ipv4.header_len in
  Proto.Ipv4.write v h;
  Alcotest.(check bool) "checksum valid" true (Proto.Ipv4.checksum_valid (View.ro v));
  (match Proto.Ipv4.parse (View.ro v) with
  | Some h' ->
      Alcotest.(check int) "total_len" 120 h'.Proto.Ipv4.total_len;
      Alcotest.(check int) "id" 77 h'.Proto.Ipv4.id;
      Alcotest.(check int) "ttl" 32 h'.Proto.Ipv4.ttl;
      Alcotest.(check int) "proto" 17 h'.Proto.Ipv4.proto;
      Alcotest.(check bool) "src" true (Proto.Ipaddr.equal ip_a h'.Proto.Ipv4.src)
  | None -> Alcotest.fail "parse failed")

let ipv4_corruption_detected () =
  let h = Proto.Ipv4.make ~proto:6 ~src:ip_a ~dst:ip_b ~payload_len:0 () in
  let v = View.create Proto.Ipv4.header_len in
  Proto.Ipv4.write v h;
  View.set_u8 v 8 99 (* flip ttl *);
  Alcotest.(check bool) "corrupt header rejected" false
    (Proto.Ipv4.checksum_valid (View.ro v))

let ipv4_frag_fields () =
  let h =
    Proto.Ipv4.make ~id:9 ~more_fragments:true ~frag_offset:185 ~proto:17
      ~src:ip_a ~dst:ip_b ~payload_len:8 ()
  in
  let v = View.create Proto.Ipv4.header_len in
  Proto.Ipv4.write v h;
  match Proto.Ipv4.parse (View.ro v) with
  | Some h' ->
      Alcotest.(check bool) "mf" true h'.Proto.Ipv4.more_fragments;
      Alcotest.(check int) "offset" 185 h'.Proto.Ipv4.frag_offset
  | None -> Alcotest.fail "parse failed"

(* ---- Ip_frag ----------------------------------------------------------- *)

let frag_small_passthrough () =
  match Proto.Ip_frag.fragment ~mtu:1500 (Mbuf.of_string "short") with
  | [ (0, false, m) ] when Mbuf.to_string m = "short" -> ()
  | _ -> Alcotest.fail "small payload should not fragment"

let frag_sizes () =
  let payload = String.make 4000 'x' in
  let frags = Proto.Ip_frag.fragment ~mtu:1500 (Mbuf.of_string payload) in
  Alcotest.(check int) "three fragments" 3 (List.length frags);
  List.iteri
    (fun i (off, more, data) ->
      Alcotest.(check bool) "8-byte aligned offsets" true (off * 8 mod 8 = 0);
      if i < 2 then begin
        Alcotest.(check bool) "more set" true more;
        Alcotest.(check int) "full fragment" 1480 (Mbuf.length data)
      end
      else Alcotest.(check bool) "last has no more" false more)
    frags;
  let total = List.fold_left (fun a (_, _, d) -> a + Mbuf.length d) 0 frags in
  Alcotest.(check int) "lossless" 4000 total

let reassemble frags =
  let t = Proto.Ip_frag.create () in
  let now = Sim.Stime.zero in
  List.fold_left
    (fun acc (off8, more, data) ->
      let h =
        Proto.Ipv4.make ~id:1 ~more_fragments:more ~frag_offset:off8 ~proto:17
          ~src:ip_a ~dst:ip_b ~payload_len:(Mbuf.length data) ()
      in
      match Proto.Ip_frag.input t ~now h (Mbuf.view data) with
      | Some d -> Some (Mbuf.to_string d)
      | None -> acc)
    None frags

let frag_roundtrip () =
  let payload = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  let frags = Proto.Ip_frag.fragment ~mtu:1500 (Mbuf.of_string payload) in
  match reassemble frags with
  | Some d -> Alcotest.(check bool) "reassembled intact" true (d = payload)
  | None -> Alcotest.fail "did not reassemble"

let frag_out_of_order () =
  let payload = String.init 3000 (fun i -> Char.chr (i mod 251)) in
  let frags = List.rev (Proto.Ip_frag.fragment ~mtu:1000 (Mbuf.of_string payload)) in
  match reassemble frags with
  | Some d -> Alcotest.(check bool) "order independent" true (d = payload)
  | None -> Alcotest.fail "did not reassemble"

let frag_duplicates_ignored () =
  let payload = String.make 3000 'q' in
  let frags = Proto.Ip_frag.fragment ~mtu:1500 (Mbuf.of_string payload) in
  let doubled = frags @ frags in
  match reassemble doubled with
  | Some d -> Alcotest.(check int) "no double counting" 3000 (String.length d)
  | None -> Alcotest.fail "did not reassemble"

let frag_timeout () =
  let t = Proto.Ip_frag.create ~timeout:(Sim.Stime.s 1) () in
  let h =
    Proto.Ipv4.make ~id:1 ~more_fragments:true ~frag_offset:0 ~proto:17
      ~src:ip_a ~dst:ip_b ~payload_len:8 ()
  in
  ignore (Proto.Ip_frag.input t ~now:Sim.Stime.zero h (View.of_string "AAAAAAAA"));
  Alcotest.(check int) "pending" 1 (Proto.Ip_frag.pending_count t);
  (* an unrelated fragment far in the future expires the stale context *)
  let h2 = { h with Proto.Ipv4.id = 2 } in
  ignore (Proto.Ip_frag.input t ~now:(Sim.Stime.s 5) h2 (View.of_string "BBBBBBBB"));
  Alcotest.(check int) "stale expired" 1 (Proto.Ip_frag.timeout_count t)

let frag_qcheck =
  QCheck.Test.make ~name:"fragment/reassemble roundtrip"
    QCheck.(pair (string_of_size Gen.(1 -- 8000)) (int_range 80 1500))
    (fun (payload, mtu) ->
      let frags = Proto.Ip_frag.fragment ~mtu (Mbuf.of_string payload) in
      (* every fragment fits in the MTU *)
      List.for_all (fun (_, _, d) -> Mbuf.length d + 20 <= mtu) frags
      && reassemble frags = Some payload)

(* ---- Udp -------------------------------------------------------------- *)

let udp_datagram ?(checksum = true) payload =
  let pkt = Mbuf.of_string payload in
  Proto.Udp.encapsulate ~checksum pkt ~src:ip_a ~dst:ip_b ~src_port:1000
    ~dst_port:2000;
  pkt

let udp_roundtrip () =
  let pkt = udp_datagram "data!" in
  let v = View.ro (Mbuf.view pkt) in
  Alcotest.(check bool) "valid" true (Proto.Udp.valid ~src:ip_a ~dst:ip_b v);
  match Proto.Udp.parse v with
  | Some h ->
      Alcotest.(check int) "src port" 1000 h.Proto.Udp.src_port;
      Alcotest.(check int) "dst port" 2000 h.Proto.Udp.dst_port;
      Alcotest.(check int) "length" 13 h.Proto.Udp.len
  | None -> Alcotest.fail "parse failed"

let udp_checksum_catches_corruption () =
  let pkt = udp_datagram "data!" in
  let v = Mbuf.view pkt in
  View.set_u8 v 9 (View.get_u8 v 9 lxor 0xff);
  Alcotest.(check bool) "corrupt payload rejected" false
    (Proto.Udp.valid ~src:ip_a ~dst:ip_b (View.ro v));
  (* note: swapping src and dst would NOT change the sum (one's-complement
     addition is commutative); use a genuinely different address *)
  Alcotest.(check bool) "wrong pseudo-header rejected" false
    (Proto.Udp.valid ~src:(Proto.Ipaddr.v 10 9 9 9) ~dst:ip_b
       (View.ro (Mbuf.view (udp_datagram "x"))))

let udp_no_checksum () =
  let pkt = udp_datagram ~checksum:false "media" in
  let v = Mbuf.view pkt in
  Alcotest.(check int) "checksum field zero" 0 (View.get_u16 v 6);
  View.set_u8 v 9 0xff;
  Alcotest.(check bool) "corruption tolerated when disabled" true
    (Proto.Udp.valid ~src:ip_a ~dst:ip_b (View.ro v))

let udp_length_mismatch () =
  let pkt = udp_datagram "data!" in
  let v = Mbuf.view pkt in
  View.set_u16 v 4 99;
  Alcotest.(check bool) "bad length rejected" false
    (Proto.Udp.valid ~src:ip_a ~dst:ip_b (View.ro v))

(* ---- Icmp ------------------------------------------------------------- *)

let icmp_echo_roundtrip () =
  let m = Proto.Icmp.echo_request ~ident:7 ~seq:3 "ping-payload" in
  let pkt = Proto.Icmp.to_packet m in
  let v = View.ro (Mbuf.view pkt) in
  Alcotest.(check bool) "valid" true (Proto.Icmp.valid v);
  (match Proto.Icmp.parse v with
  | Some m' ->
      Alcotest.(check int) "type" Proto.Icmp.type_echo_request m'.Proto.Icmp.mtype;
      Alcotest.(check int) "ident" 7 m'.Proto.Icmp.ident;
      Alcotest.(check string) "payload" "ping-payload" m'.Proto.Icmp.payload
  | None -> Alcotest.fail "parse failed");
  let r = Proto.Icmp.echo_reply_of m in
  Alcotest.(check int) "reply type" Proto.Icmp.type_echo_reply r.Proto.Icmp.mtype

let icmp_corruption () =
  let pkt = Proto.Icmp.to_packet (Proto.Icmp.echo_request ~ident:1 ~seq:1 "x") in
  let v = Mbuf.view pkt in
  View.set_u8 v 8 0x7f;
  Alcotest.(check bool) "corrupt rejected" false (Proto.Icmp.valid (View.ro v))

(* ---- Arp -------------------------------------------------------------- *)

let arp_roundtrip () =
  let mac = Proto.Ether.Mac.of_int 0x0000dead0001 in
  let m = Proto.Arp.request ~sender_mac:mac ~sender_ip:ip_a ~target_ip:ip_b in
  let pkt = Proto.Arp.to_packet m in
  (match Proto.Arp.parse (View.ro (Mbuf.view pkt)) with
  | Some m' ->
      Alcotest.(check int) "op" Proto.Arp.op_request m'.Proto.Arp.op;
      Alcotest.(check bool) "sender ip" true
        (Proto.Ipaddr.equal ip_a m'.Proto.Arp.sender_ip);
      Alcotest.(check bool) "target ip" true
        (Proto.Ipaddr.equal ip_b m'.Proto.Arp.target_ip)
  | None -> Alcotest.fail "parse failed");
  let reply = Proto.Arp.reply_to m ~mac:(Proto.Ether.Mac.of_int 2) in
  Alcotest.(check int) "reply op" Proto.Arp.op_reply reply.Proto.Arp.op;
  Alcotest.(check bool) "reply addressed to requester" true
    (Proto.Ether.Mac.equal reply.Proto.Arp.target_mac mac)

let arp_cache () =
  let c = Proto.Arp.Cache.create ~ttl:(Sim.Stime.s 10) () in
  let mac = Proto.Ether.Mac.of_int 42 in
  Alcotest.(check bool) "miss" true
    (Proto.Arp.Cache.lookup c ~now:Sim.Stime.zero ip_a = None);
  Proto.Arp.Cache.insert c ~now:Sim.Stime.zero ip_a mac;
  Alcotest.(check bool) "hit" true
    (Proto.Arp.Cache.lookup c ~now:(Sim.Stime.s 5) ip_a = Some mac);
  Alcotest.(check bool) "expired" true
    (Proto.Arp.Cache.lookup c ~now:(Sim.Stime.s 11) ip_a = None)

let arp_cache_waiters () =
  let c = Proto.Arp.Cache.create () in
  let woken = ref [] in
  Proto.Arp.Cache.wait c ip_a (fun mac -> woken := Proto.Ether.Mac.to_int mac :: !woken);
  Proto.Arp.Cache.wait c ip_a (fun mac -> woken := Proto.Ether.Mac.to_int mac :: !woken);
  Proto.Arp.Cache.insert c ~now:Sim.Stime.zero ip_a (Proto.Ether.Mac.of_int 9);
  Alcotest.(check (list int)) "both waiters woken once" [ 9; 9 ] !woken;
  Proto.Arp.Cache.insert c ~now:Sim.Stime.zero ip_a (Proto.Ether.Mac.of_int 9);
  Alcotest.(check int) "no rewake" 2 (List.length !woken)

(* ---- Byteq ------------------------------------------------------------- *)

let byteq_basic () =
  let q = Proto.Byteq.create () in
  Proto.Byteq.push q "hello";
  Proto.Byteq.push q " world";
  Alcotest.(check int) "length" 11 (Proto.Byteq.length q);
  Alcotest.(check string) "peek across chunks" "lo wo"
    (Proto.Byteq.peek_sub q ~off:3 ~len:5);
  Proto.Byteq.drop q 6;
  Alcotest.(check string) "after drop" "world" (Proto.Byteq.to_string q);
  Proto.Byteq.drop q 5;
  Alcotest.(check bool) "empty" true (Proto.Byteq.is_empty q)

let byteq_model =
  QCheck.Test.make ~name:"byteq behaves like a string"
    QCheck.(list (pair (string_of_size Gen.(0 -- 20)) (int_bound 15)))
    (fun ops ->
      let q = Proto.Byteq.create () in
      let model = ref "" in
      List.for_all
        (fun (push, dropn) ->
          Proto.Byteq.push q push;
          model := !model ^ push;
          let dropn = min dropn (String.length !model) in
          Proto.Byteq.drop q dropn;
          model := String.sub !model dropn (String.length !model - dropn);
          Proto.Byteq.to_string q = !model
          && Proto.Byteq.length q = String.length !model)
        ops)

(* ---- Tcp_wire ----------------------------------------------------------- *)

let tcp_wire_roundtrip () =
  let h =
    {
      Proto.Tcp_wire.src_port = 1234;
      dst_port = 80;
      seq = Proto.Tcp_wire.Seq.of_int 1000;
      ack = Proto.Tcp_wire.Seq.of_int 2000;
      flags = Proto.Tcp_wire.Flags.(syn + ack);
      window = 8192;
    }
  in
  let pkt = Proto.Tcp_wire.to_packet ~src:ip_a ~dst:ip_b h "body" in
  let v = View.ro (Mbuf.view pkt) in
  Alcotest.(check bool) "checksum valid" true
    (Proto.Tcp_wire.valid ~src:ip_a ~dst:ip_b v);
  match Proto.Tcp_wire.parse v with
  | Some (h', off) ->
      Alcotest.(check int) "data offset" 20 off;
      Alcotest.(check int) "sport" 1234 h'.Proto.Tcp_wire.src_port;
      Alcotest.(check int) "seq" 1000 (Proto.Tcp_wire.Seq.to_int h'.Proto.Tcp_wire.seq);
      Alcotest.(check bool) "flags" true
        Proto.Tcp_wire.Flags.(test h'.Proto.Tcp_wire.flags syn
                              && test h'.Proto.Tcp_wire.flags ack);
      Alcotest.(check int) "window" 8192 h'.Proto.Tcp_wire.window
  | None -> Alcotest.fail "parse failed"

let tcp_seq_wraparound () =
  let module S = Proto.Tcp_wire.Seq in
  let near_max = S.of_int 0xfffffff0 in
  let wrapped = S.add near_max 0x20 in
  Alcotest.(check int) "wraps" 0x10 (S.to_int wrapped);
  Alcotest.(check bool) "lt across wrap" true (S.lt near_max wrapped);
  Alcotest.(check bool) "gt across wrap" true (S.gt wrapped near_max);
  Alcotest.(check int) "diff across wrap" 0x20 (S.diff wrapped near_max)

let tcp_seq_ordering =
  QCheck.Test.make ~name:"seq ordering is antisymmetric for nearby values"
    QCheck.(pair (int_bound 0x3fffffff) (int_range 1 100000))
    (fun (base, delta) ->
      let module S = Proto.Tcp_wire.Seq in
      let a = S.of_int base in
      let b = S.add a delta in
      S.lt a b && S.gt b a && S.le a b && S.ge b a && not (S.lt b a))

(* ---- Tcp engine over an in-memory wire -------------------------------- *)

module H = struct
  type side = {
    tcp : Proto.Tcp.t;
    rx : Buffer.t;
    mutable established : bool;
    mutable peer_closed : bool;
    mutable closed : bool;
    mutable errors : string list;
  }

  (* Two engines joined by a lossy, optionally-reordering wire. *)
  let pair ?(loss = 0.) ?(reorder = false) ?(seed = 11) ?cfg_a ?cfg_b () =
    let engine = Sim.Engine.create ~seed () in
    let rng = Sim.Rng.create (seed * 31) in
    let cfg_a = match cfg_a with Some c -> c | None -> Proto.Tcp.default_config () in
    let cfg_b = match cfg_b with Some c -> c | None -> Proto.Tcp.default_config () in
    let a_ref = ref None and b_ref = ref None in
    let wire dst_ref pkt =
      if Sim.Rng.float rng 1.0 >= loss then begin
        let data = Mbuf.to_string pkt in
        let delay =
          if reorder then Sim.Stime.us (100 + Sim.Rng.int rng 500)
          else Sim.Stime.us 200
        in
        ignore
          (Sim.Engine.schedule_in engine ~delay (fun () ->
               match !dst_ref with
               | Some side -> Proto.Tcp.input side.tcp (View.of_string data)
               | None -> ()))
      end
    in
    let mk cfg ~local ~dst_ref =
      let side_ref = ref None in
      let env =
        {
          Proto.Tcp.now = (fun () -> Sim.Engine.now engine);
          set_timer =
            (fun delay fn ->
              let h = Sim.Engine.schedule_in engine ~delay fn in
              fun () -> Sim.Engine.cancel h);
          tx = (fun pkt -> wire dst_ref pkt);
          on_receive =
            (fun data ->
              match !side_ref with
              | Some s -> Buffer.add_string s.rx data
              | None -> ());
          on_established =
            (fun () ->
              match !side_ref with Some s -> s.established <- true | None -> ());
          on_peer_close =
            (fun () ->
              match !side_ref with Some s -> s.peer_closed <- true | None -> ());
          on_close =
            (fun () -> match !side_ref with Some s -> s.closed <- true | None -> ());
          on_error =
            (fun e ->
              match !side_ref with
              | Some s -> s.errors <- e :: s.errors
              | None -> ());
        }
      in
      let side =
        {
          tcp = Proto.Tcp.create env cfg ~local;
          rx = Buffer.create 64;
          established = false;
          peer_closed = false;
          closed = false;
          errors = [];
        }
      in
      side_ref := Some side;
      side
    in
    let a = mk cfg_a ~local:(ip_a, 1000) ~dst_ref:b_ref in
    let b = mk cfg_b ~local:(ip_b, 80) ~dst_ref:a_ref in
    a_ref := Some a;
    b_ref := Some b;
    (* passive side *)
    Proto.Tcp.set_remote b.tcp ~remote:(ip_a, 1000);
    Proto.Tcp.set_iss b.tcp (Proto.Tcp_wire.Seq.of_int 5000);
    Proto.Tcp.listen b.tcp;
    (engine, a, b)

  let connect engine a =
    Proto.Tcp.connect a.tcp ~remote:(ip_b, 80)
      ~iss:(Proto.Tcp_wire.Seq.of_int 100);
    ignore engine
end

let tcp_handshake () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 2);
  Alcotest.(check bool) "client established" true a.H.established;
  Alcotest.(check bool) "server established" true b.H.established;
  Alcotest.(check string) "client state" "ESTABLISHED"
    (Proto.Tcp.state_to_string (Proto.Tcp.state a.H.tcp));
  Alcotest.(check string) "server state" "ESTABLISHED"
    (Proto.Tcp.state_to_string (Proto.Tcp.state b.H.tcp))

let tcp_bidirectional_data () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  Proto.Tcp.send a.H.tcp "hello from a";
  Proto.Tcp.send b.H.tcp "hello from b";
  Sim.Engine.run engine ~until:(Sim.Stime.s 3);
  Alcotest.(check string) "b received" "hello from a" (Buffer.contents b.H.rx);
  Alcotest.(check string) "a received" "hello from b" (Buffer.contents a.H.rx)

let tcp_bulk_transfer () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  let payload = String.init 200_000 (fun i -> Char.chr (i mod 256)) in
  Proto.Tcp.send a.H.tcp payload;
  Sim.Engine.run engine ~until:(Sim.Stime.s 30);
  Alcotest.(check int) "all delivered" 200_000 (Buffer.length b.H.rx);
  Alcotest.(check bool) "in order and intact" true
    (Buffer.contents b.H.rx = payload);
  let c = Proto.Tcp.counters a.H.tcp in
  Alcotest.(check bool) "respected mss" true
    (c.Proto.Tcp.segs_out >= 200_000 / 1460);
  Alcotest.(check int) "no retransmissions on a clean wire" 0
    c.Proto.Tcp.retransmits

let tcp_close_sequence () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  Proto.Tcp.send a.H.tcp "bye";
  Proto.Tcp.close a.H.tcp;
  Sim.Engine.run engine ~until:(Sim.Stime.s 2);
  Alcotest.(check bool) "b saw EOF" true b.H.peer_closed;
  Alcotest.(check string) "data before FIN delivered" "bye"
    (Buffer.contents b.H.rx);
  Alcotest.(check string) "b in CLOSE_WAIT" "CLOSE_WAIT"
    (Proto.Tcp.state_to_string (Proto.Tcp.state b.H.tcp));
  Proto.Tcp.close b.H.tcp;
  Sim.Engine.run engine ~until:(Sim.Stime.s 5);
  Alcotest.(check string) "a in TIME_WAIT" "TIME_WAIT"
    (Proto.Tcp.state_to_string (Proto.Tcp.state a.H.tcp));
  Alcotest.(check bool) "b fully closed" true b.H.closed;
  (* 2*MSL later the client is gone too *)
  Sim.Engine.run engine ~until:(Sim.Stime.s 120);
  Alcotest.(check bool) "a fully closed" true a.H.closed

let tcp_abort () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  Proto.Tcp.abort a.H.tcp;
  Sim.Engine.run engine ~until:(Sim.Stime.s 2);
  Alcotest.(check bool) "peer saw reset" true
    (List.exists (fun e -> e = "connection reset by peer") b.H.errors);
  Alcotest.(check string) "peer closed" "CLOSED"
    (Proto.Tcp.state_to_string (Proto.Tcp.state b.H.tcp))

let tcp_loss_recovery () =
  let engine, a, b = H.pair ~loss:0.15 ~seed:5 () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 5);
  let payload = String.init 50_000 (fun i -> Char.chr (i mod 256)) in
  Proto.Tcp.send a.H.tcp payload;
  Sim.Engine.run engine ~until:(Sim.Stime.s 600);
  Alcotest.(check bool) "delivered despite loss" true
    (Buffer.contents b.H.rx = payload);
  Alcotest.(check bool) "retransmissions happened" true
    ((Proto.Tcp.counters a.H.tcp).Proto.Tcp.retransmits > 0
    || (Proto.Tcp.counters a.H.tcp).Proto.Tcp.fast_retransmits > 0)

let tcp_reorder_tolerance () =
  let engine, a, b = H.pair ~reorder:true ~seed:9 () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 2);
  let payload = String.init 40_000 (fun i -> Char.chr ((i * 7) mod 256)) in
  Proto.Tcp.send a.H.tcp payload;
  Sim.Engine.run engine ~until:(Sim.Stime.s 120);
  Alcotest.(check bool) "in-order delivery despite reordering" true
    (Buffer.contents b.H.rx = payload)

let tcp_corrupt_segment_dropped () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  (* deliver a corrupted segment directly *)
  let pkt =
    Proto.Tcp_wire.to_packet ~src:ip_a ~dst:ip_b
      {
        Proto.Tcp_wire.src_port = 1000;
        dst_port = 80;
        seq = Proto.Tcp_wire.Seq.of_int 0;
        ack = Proto.Tcp_wire.Seq.of_int 0;
        flags = Proto.Tcp_wire.Flags.ack;
        window = 100;
      }
      "evil"
  in
  let v = Mbuf.view pkt in
  View.set_u8 v 21 0x99;
  let before = (Proto.Tcp.counters b.H.tcp).Proto.Tcp.bad_segments in
  Proto.Tcp.input b.H.tcp (View.ro v);
  Alcotest.(check int) "bad segment counted" (before + 1)
    (Proto.Tcp.counters b.H.tcp).Proto.Tcp.bad_segments;
  Alcotest.(check string) "no data delivered" "" (Buffer.contents b.H.rx)

let tcp_small_window () =
  let cfg_b = { (Proto.Tcp.default_config ()) with Proto.Tcp.window = 4096 } in
  let engine, a, b = H.pair ~cfg_b () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  let payload = String.make 30_000 'w' in
  Proto.Tcp.send a.H.tcp payload;
  Sim.Engine.run engine ~until:(Sim.Stime.s 60);
  Alcotest.(check int) "delivered through a small window" 30_000
    (Buffer.length b.H.rx)

let tcp_syn_retransmit () =
  (* server never answers: SYN should be retransmitted, then give up *)
  let engine, a, _b = H.pair ~loss:1.0 () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 4000);
  Alcotest.(check bool) "retransmitted" true
    ((Proto.Tcp.counters a.H.tcp).Proto.Tcp.retransmits > 3);
  Alcotest.(check bool) "eventually errored" true (a.H.errors <> []);
  Alcotest.(check string) "closed" "CLOSED"
    (Proto.Tcp.state_to_string (Proto.Tcp.state a.H.tcp))

let tcp_loss_qcheck =
  QCheck.Test.make ~count:10 ~name:"transfers survive random loss"
    (QCheck.make (QCheck.Gen.int_range 1 1000))
    (fun seed ->
      let engine, a, b = H.pair ~loss:0.1 ~seed () in
      H.connect engine a;
      Sim.Engine.run engine ~until:(Sim.Stime.s 5);
      let payload = String.init 20_000 (fun i -> Char.chr ((i + seed) mod 256)) in
      (match Proto.Tcp.state a.H.tcp with
      | Proto.Tcp.Established -> Proto.Tcp.send a.H.tcp payload
      | _ -> ());
      Sim.Engine.run engine ~until:(Sim.Stime.s 2000);
      (* either the handshake never survived total early loss (possible but
         rare) or the payload arrived intact *)
      (not a.H.established) || Buffer.contents b.H.rx = payload)

(* ---- Http --------------------------------------------------------------- *)

let http_request_roundtrip () =
  let r = { Proto.Http.meth = "GET"; path = "/index.html"; headers = [ ("host", "x") ] } in
  let s = Proto.Http.request_to_string r in
  match Proto.Http.parse_request s with
  | Some r' ->
      Alcotest.(check string) "method" "GET" r'.Proto.Http.meth;
      Alcotest.(check string) "path" "/index.html" r'.Proto.Http.path;
      Alcotest.(check (option string)) "header" (Some "x")
        (List.assoc_opt "host" r'.Proto.Http.headers)
  | None -> Alcotest.fail "parse failed"

let http_response_roundtrip () =
  let r = Proto.Http.ok ~headers:[ ("content-type", "text/plain") ] "the body" in
  let s = Proto.Http.response_to_string r in
  match Proto.Http.parse_response s with
  | Some r' ->
      Alcotest.(check int) "status" 200 r'.Proto.Http.status;
      Alcotest.(check string) "body" "the body" r'.Proto.Http.body;
      Alcotest.(check (option string)) "content-length" (Some "8")
        (List.assoc_opt "content-length" r'.Proto.Http.headers)
  | None -> Alcotest.fail "parse failed"

let http_bad_request () =
  Alcotest.(check bool) "garbage rejected" true
    (Proto.Http.parse_request "garbage\r\n" = None)

let suite =
  [
    ( "proto.ipaddr",
      [ tc "roundtrip" ipaddr_roundtrip; tc "subnets" ipaddr_subnet ] );
    ( "proto.ether",
      [
        tc "header roundtrip" ether_roundtrip;
        tc "mac formatting" ether_mac_pp;
        tc "encapsulate" ether_encapsulate;
      ] );
    ( "proto.ipv4",
      [
        tc "header roundtrip + checksum" ipv4_roundtrip;
        tc "corruption detected" ipv4_corruption_detected;
        tc "fragment fields" ipv4_frag_fields;
      ] );
    ( "proto.ip_frag",
      [
        tc "small payloads pass through" frag_small_passthrough;
        tc "fragment sizes and flags" frag_sizes;
        tc "roundtrip" frag_roundtrip;
        tc "out-of-order fragments" frag_out_of_order;
        tc "duplicates ignored" frag_duplicates_ignored;
        tc "stale contexts expire" frag_timeout;
        prop frag_qcheck;
      ] );
    ( "proto.udp",
      [
        tc "roundtrip" udp_roundtrip;
        tc "checksum catches corruption" udp_checksum_catches_corruption;
        tc "checksum disabled variant" udp_no_checksum;
        tc "length mismatch" udp_length_mismatch;
      ] );
    ( "proto.icmp",
      [ tc "echo roundtrip" icmp_echo_roundtrip; tc "corruption" icmp_corruption ] );
    ( "proto.arp",
      [
        tc "codec roundtrip" arp_roundtrip;
        tc "cache ttl" arp_cache;
        tc "cache waiters" arp_cache_waiters;
      ] );
    ( "proto.byteq", [ tc "basics" byteq_basic; prop byteq_model ] );
    ( "proto.tcp_wire",
      [
        tc "segment roundtrip" tcp_wire_roundtrip;
        tc "sequence wraparound" tcp_seq_wraparound;
        prop tcp_seq_ordering;
      ] );
    ( "proto.tcp",
      [
        tc "three-way handshake" tcp_handshake;
        tc "bidirectional data" tcp_bidirectional_data;
        stc "bulk transfer" tcp_bulk_transfer;
        tc "orderly close" tcp_close_sequence;
        tc "abort sends RST" tcp_abort;
        stc "loss recovery" tcp_loss_recovery;
        stc "reordering tolerated" tcp_reorder_tolerance;
        tc "corrupt segments dropped" tcp_corrupt_segment_dropped;
        stc "small peer window" tcp_small_window;
        stc "SYN retransmission and give-up" tcp_syn_retransmit;
        prop tcp_loss_qcheck;
      ] );
    ( "proto.http",
      [
        tc "request roundtrip" http_request_roundtrip;
        tc "response roundtrip" http_response_roundtrip;
        tc "bad request" http_bad_request;
      ] );
  ]

(* ---- more TCP state machine coverage ----------------------------------- *)

let tcp_simultaneous_close () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  (* both ends close at the same instant: FIN crosses FIN *)
  Proto.Tcp.close a.H.tcp;
  Proto.Tcp.close b.H.tcp;
  Sim.Engine.run engine ~until:(Sim.Stime.s 5);
  let sa = Proto.Tcp.state_to_string (Proto.Tcp.state a.H.tcp) in
  let sb = Proto.Tcp.state_to_string (Proto.Tcp.state b.H.tcp) in
  (* both sides go through CLOSING/TIME_WAIT *)
  Alcotest.(check bool)
    (Printf.sprintf "both in TIME_WAIT (%s/%s)" sa sb)
    true
    (sa = "TIME_WAIT" && sb = "TIME_WAIT");
  Sim.Engine.run engine ~until:(Sim.Stime.s 120);
  Alcotest.(check bool) "both fully closed" true (a.H.closed && b.H.closed)

let tcp_half_close_data_still_flows () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  (* a closes its sending side; b can still send data to a *)
  Proto.Tcp.close a.H.tcp;
  Sim.Engine.run engine ~until:(Sim.Stime.s 2);
  Alcotest.(check bool) "b saw the FIN" true b.H.peer_closed;
  Proto.Tcp.send b.H.tcp "late data";
  Sim.Engine.run engine ~until:(Sim.Stime.s 4);
  Alcotest.(check string) "data flows into the half-closed side" "late data"
    (Buffer.contents a.H.rx)

let tcp_synack_retransmit () =
  (* heavy loss through the handshake and a transfer: both sides must
     retransmit (SYN, SYN|ACK or data) yet converge *)
  let engine, a, b = H.pair ~loss:0.6 ~seed:17 () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 60);
  if Proto.Tcp.state a.H.tcp = Proto.Tcp.Established then
    Proto.Tcp.send a.H.tcp (String.make 10_000 'h');
  Sim.Engine.run engine ~until:(Sim.Stime.s 4000);
  let total_retx =
    (Proto.Tcp.counters a.H.tcp).Proto.Tcp.retransmits
    + (Proto.Tcp.counters b.H.tcp).Proto.Tcp.retransmits
  in
  Alcotest.(check bool) "retransmissions happened" true (total_retx > 0);
  Alcotest.(check bool) "converged: delivered or cleanly dead" true
    (Buffer.length b.H.rx = 10_000
    || Proto.Tcp.state a.H.tcp = Proto.Tcp.Closed)

let tcp_send_after_close_rejected () =
  let engine, a, _b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  Proto.Tcp.close a.H.tcp;
  match Proto.Tcp.send a.H.tcp "too late" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "send after close accepted"

let tcp_rtt_srtt_convergence () =
  (* constant 400us wire delay -> srtt should approach the real RTT *)
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  Proto.Tcp.send a.H.tcp (String.make 100_000 'r');
  Sim.Engine.run engine ~until:(Sim.Stime.s 30);
  ignore b;
  let srtt = Sim.Stime.to_us (Proto.Tcp.srtt a.H.tcp) in
  (* wire is 200us each way in the harness *)
  Alcotest.(check bool)
    (Printf.sprintf "srtt near 400us wire RTT (%.0f)" srtt)
    true
    (srtt > 300. && srtt < 800.)

let suite =
  suite
  @ [
      ( "proto.tcp_states",
        [
          stc "simultaneous close" tcp_simultaneous_close;
          tc "half-close keeps reverse data" tcp_half_close_data_still_flows;
          stc "handshake under heavy loss" tcp_synack_retransmit;
          tc "send after close rejected" tcp_send_after_close_rejected;
          stc "srtt converges" tcp_rtt_srtt_convergence;
        ] );
    ]

(* ---- golden wire formats (hand-computed reference bytes) ----------------- *)

let hex v =
  String.concat ""
    (List.init (View.length v) (fun i -> Printf.sprintf "%02x" (View.get_u8 v i)))

let udp_golden_bytes () =
  let pkt = Mbuf.of_string "hi" in
  Proto.Udp.encapsulate pkt ~src:(Proto.Ipaddr.v 10 0 0 1)
    ~dst:(Proto.Ipaddr.v 10 0 0 2) ~src_port:0x1389 ~dst_port:7;
  Alcotest.(check string) "hand-computed datagram" "13890007000a6fde6869"
    (hex (View.ro (Mbuf.view pkt)))

let ipv4_golden_bytes () =
  let v = View.create Proto.Ipv4.header_len in
  Proto.Ipv4.write v
    (Proto.Ipv4.make ~id:1 ~ttl:64 ~proto:17 ~src:(Proto.Ipaddr.v 10 0 0 1)
       ~dst:(Proto.Ipaddr.v 10 0 0 2) ~payload_len:10 ());
  Alcotest.(check string) "hand-computed header"
    "4500001e00010000401166cc0a0000010a000002" (hex (View.ro v))

let suite =
  suite
  @ [
      ( "proto.golden",
        [
          tc "udp bytes" udp_golden_bytes;
          tc "ipv4 bytes" ipv4_golden_bytes;
        ] );
    ]

(* Regression: a pending delayed ACK must not fire after the connection
   is gone (no stray segments from CLOSED endpoints). *)
let tcp_no_stray_ack_after_abort () =
  let engine, a, b = H.pair () in
  H.connect engine a;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  (* a single in-order segment arms b's delayed-ACK timer *)
  Proto.Tcp.send a.H.tcp "one";
  Sim.Engine.run engine ~until:(Sim.Stime.ms 1002);
  let before = (Proto.Tcp.counters b.H.tcp).Proto.Tcp.segs_out in
  Proto.Tcp.abort b.H.tcp;
  Sim.Engine.run engine ~until:(Sim.Stime.s 5);
  (* only the RST may have left after the abort *)
  Alcotest.(check bool) "no delayed ACK from a dead connection" true
    ((Proto.Tcp.counters b.H.tcp).Proto.Tcp.segs_out <= before + 1)

let suite =
  suite
  @ [
      ( "proto.tcp_teardown",
        [ tc "no stray delayed ACK" tcp_no_stray_ack_after_abort ] );
    ]
