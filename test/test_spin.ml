(* Tests for the SPIN kernel model: typed symbols, protection domains,
   the compiler/linker pipeline, the event dispatcher and EPHEMERAL
   handler execution. *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t
let us = Sim.Stime.us

(* ---- Univ ----------------------------------------------------------- *)

let univ_roundtrip () =
  let w : int Spin.Univ.witness = Spin.Univ.witness () in
  let u = Spin.Univ.inj w 42 in
  Alcotest.(check (option int)) "same witness projects" (Some 42)
    (Spin.Univ.proj w u)

let univ_type_isolation () =
  let w1 : int Spin.Univ.witness = Spin.Univ.witness () in
  let w2 : int Spin.Univ.witness = Spin.Univ.witness () in
  let u = Spin.Univ.inj w1 42 in
  Alcotest.(check (option int)) "different witness gets None" None
    (Spin.Univ.proj w2 u)

(* ---- Interface / Domain --------------------------------------------- *)

let int_w : int Spin.Univ.witness = Spin.Univ.witness ()
let str_w : string Spin.Univ.witness = Spin.Univ.witness ()

let interface_basics () =
  let i = Spin.Interface.create "Ether" in
  Spin.Interface.export i ~sym:"mtu" int_w 1500;
  Alcotest.(check bool) "mem" true (Spin.Interface.mem i ~sym:"mtu");
  Alcotest.(check bool) "not mem" false (Spin.Interface.mem i ~sym:"nope");
  Alcotest.(check (list string)) "symbols" [ "mtu" ] (Spin.Interface.symbols i);
  Alcotest.check_raises "duplicate export rejected"
    (Spin.Interface.Duplicate_symbol "Ether.mtu") (fun () ->
      Spin.Interface.export i ~sym:"mtu" int_w 9000)

let domain_resolution () =
  let i1 = Spin.Interface.create "A" in
  Spin.Interface.export i1 ~sym:"x" int_w 1;
  let i2 = Spin.Interface.create "B" in
  Spin.Interface.export i2 ~sym:"y" str_w "s";
  let d = Spin.Domain.of_interfaces "d" [ i1 ] in
  Alcotest.(check bool) "resolves own" true
    (Spin.Domain.can_resolve d ~iface:"A" ~sym:"x");
  Alcotest.(check bool) "cannot see others" false
    (Spin.Domain.can_resolve d ~iface:"B" ~sym:"y");
  Alcotest.(check bool) "missing symbol" false
    (Spin.Domain.can_resolve d ~iface:"A" ~sym:"z");
  let d2 = Spin.Domain.of_interfaces "d2" [ i2 ] in
  let u = Spin.Domain.union "u" d d2 in
  Alcotest.(check bool) "union sees both" true
    (Spin.Domain.can_resolve u ~iface:"B" ~sym:"y"
    && Spin.Domain.can_resolve u ~iface:"A" ~sym:"x");
  (* the union is a copy: extending it does not affect the originals *)
  let i3 = Spin.Interface.create "C" in
  Spin.Domain.add u i3;
  Alcotest.(check bool) "originals unchanged" false
    (Spin.Domain.find_interface d "C" <> None)

(* ---- Compiler / Linker ------------------------------------------------ *)

let make_iface () =
  let i = Spin.Interface.create "Svc" in
  Spin.Interface.export i ~sym:"op" int_w 7;
  i

let link_ok () =
  let d = Spin.Domain.of_interfaces "d" [ make_iface () ] in
  let got = ref 0 in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e" ~imports:[ ("Svc", "op") ]
      (fun linkage -> got := linkage.get int_w ~iface:"Svc" ~sym:"op")
  in
  (match Spin.Linker.link ~domain:d ext with
  | Ok l ->
      Alcotest.(check bool) "linked" true (Spin.Linker.is_linked l);
      Alcotest.(check int) "import resolved" 7 !got
  | Error f -> Alcotest.failf "link failed: %a" Spin.Extension.pp_failure f)

let link_rejects_unsigned () =
  let d = Spin.Domain.of_interfaces "d" [ make_iface () ] in
  let ext = Spin.Extension.Compiler.forge ~name:"evil" ~imports:[] (fun _ -> ()) in
  match Spin.Linker.link ~domain:d ext with
  | Error Spin.Extension.Unsigned -> ()
  | Ok _ -> Alcotest.fail "forged extension linked!"
  | Error f -> Alcotest.failf "wrong failure: %a" Spin.Extension.pp_failure f

let link_rejects_unresolved () =
  let d = Spin.Domain.of_interfaces "d" [ make_iface () ] in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e"
      ~imports:[ ("Svc", "op"); ("Secret", "root") ]
      (fun _ -> ())
  in
  match Spin.Linker.link ~domain:d ext with
  | Error (Spin.Extension.Unresolved [ ("Secret", "root") ]) -> ()
  | Ok _ -> Alcotest.fail "unresolved import linked!"
  | Error f -> Alcotest.failf "wrong failure: %a" Spin.Extension.pp_failure f

let link_rejects_undeclared_get () =
  let d = Spin.Domain.of_interfaces "d" [ make_iface () ] in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e" ~imports:[]
      (fun linkage ->
        (* tries to grab a symbol it never declared *)
        ignore (linkage.get int_w ~iface:"Svc" ~sym:"op"))
  in
  match Spin.Linker.link ~domain:d ext with
  | Error (Spin.Extension.Undeclared_import ("Svc", "op")) -> ()
  | Ok _ -> Alcotest.fail "undeclared import allowed!"
  | Error f -> Alcotest.failf "wrong failure: %a" Spin.Extension.pp_failure f

let link_rejects_type_clash () =
  let d = Spin.Domain.of_interfaces "d" [ make_iface () ] in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e" ~imports:[ ("Svc", "op") ]
      (fun linkage -> ignore (linkage.get str_w ~iface:"Svc" ~sym:"op"))
  in
  match Spin.Linker.link ~domain:d ext with
  | Error (Spin.Extension.Type_clash ("Svc", "op")) -> ()
  | Ok _ -> Alcotest.fail "type clash allowed!"
  | Error f -> Alcotest.failf "wrong failure: %a" Spin.Extension.pp_failure f

let link_failed_init_rolls_back () =
  let d = Spin.Domain.of_interfaces "d" [ make_iface () ] in
  let undone = ref false in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e" ~imports:[ ("Svc", "op") ]
      (fun linkage ->
        linkage.on_unlink (fun () -> undone := true);
        failwith "boom")
  in
  match Spin.Linker.link ~domain:d ext with
  | Error (Spin.Extension.Init_raised _) ->
      Alcotest.(check bool) "cleanups ran" true !undone
  | Ok _ -> Alcotest.fail "failing init linked!"
  | Error f -> Alcotest.failf "wrong failure: %a" Spin.Extension.pp_failure f

let unlink_runs_cleanups () =
  let d = Spin.Domain.of_interfaces "d" [ make_iface () ] in
  let cleanups = ref [] in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e" ~imports:[]
      (fun linkage ->
        linkage.on_unlink (fun () -> cleanups := 1 :: !cleanups);
        linkage.on_unlink (fun () -> cleanups := 2 :: !cleanups))
  in
  match Spin.Linker.link ~domain:d ext with
  | Error _ -> Alcotest.fail "link failed"
  | Ok l ->
      Spin.Linker.unlink l;
      Alcotest.(check bool) "unlinked" false (Spin.Linker.is_linked l);
      (* reverse registration order *)
      Alcotest.(check (list int)) "cleanup order" [ 1; 2 ] !cleanups;
      Spin.Linker.unlink l;
      Alcotest.(check (list int)) "idempotent" [ 1; 2 ] !cleanups

let compiler_rejects_duplicate_imports () =
  Alcotest.check_raises "duplicate imports"
    (Spin.Extension.Compiler.Compile_error "duplicate import Svc.op")
    (fun () ->
      ignore
        (Spin.Extension.Compiler.compile ~name:"e"
           ~imports:[ ("Svc", "op"); ("Svc", "op") ]
           (fun _ -> ())))

(* ---- Ephemeral -------------------------------------------------------- *)

let ephemeral_commits_all_without_budget () =
  let n = ref 0 in
  let prog = List.init 5 (fun _ -> Spin.Ephemeral.work ~label:"w" ~cost:(us 3) (fun () -> incr n)) in
  let r = Spin.Ephemeral.execute prog in
  Alcotest.(check int) "all committed" 5 r.Spin.Ephemeral.committed;
  Alcotest.(check bool) "not terminated" false r.Spin.Ephemeral.terminated;
  Alcotest.(check int) "effects" 5 !n;
  Alcotest.(check int) "consumed" 15_000 (Sim.Stime.to_ns r.Spin.Ephemeral.consumed)

let ephemeral_budget_terminates () =
  let n = ref 0 in
  let prog = List.init 5 (fun _ -> Spin.Ephemeral.work ~label:"w" ~cost:(us 3) (fun () -> incr n)) in
  let r = Spin.Ephemeral.execute ~budget:(us 7) prog in
  Alcotest.(check int) "prefix committed" 2 r.Spin.Ephemeral.committed;
  Alcotest.(check bool) "terminated" true r.Spin.Ephemeral.terminated;
  Alcotest.(check int) "only prefix effects" 2 !n;
  Alcotest.(check int) "charged up to the budget" 7_000
    (Sim.Stime.to_ns r.Spin.Ephemeral.consumed)

let ephemeral_budget_exact_boundary () =
  let prog = List.init 3 (fun _ -> Spin.Ephemeral.work ~label:"w" ~cost:(us 3) ignore) in
  let r = Spin.Ephemeral.execute ~budget:(us 9) prog in
  Alcotest.(check bool) "exact fit is not a termination" false
    r.Spin.Ephemeral.terminated;
  Alcotest.(check int) "all committed" 3 r.Spin.Ephemeral.committed

let ephemeral_plan_no_side_effects () =
  let n = ref 0 in
  let prog = [ Spin.Ephemeral.work ~label:"w" ~cost:(us 1) (fun () -> incr n) ] in
  let plan = Spin.Ephemeral.plan prog in
  Alcotest.(check int) "planning is pure" 0 !n;
  ignore (Spin.Ephemeral.commit plan);
  Alcotest.(check int) "commit applies" 1 !n

let ephemeral_helpers () =
  let q = Queue.create () in
  let c = Sim.Stats.Counter.create () in
  let prog = [ Spin.Ephemeral.enqueue q 42; Spin.Ephemeral.count c ] in
  ignore (Spin.Ephemeral.execute prog);
  Alcotest.(check int) "enqueued" 42 (Queue.pop q);
  Alcotest.(check int) "counted" 1 (Sim.Stats.Counter.get c);
  Alcotest.(check int) "total cost"
    (Sim.Stime.to_ns (Spin.Ephemeral.total_cost prog))
    400

let ephemeral_budget_prefix =
  QCheck.Test.make ~name:"budget commits exactly the affordable prefix"
    QCheck.(pair (list_of_size Gen.(0 -- 20) (int_range 1 10)) (int_range 0 100))
    (fun (costs, budget) ->
      let prog =
        List.map (fun c -> Spin.Ephemeral.work ~label:"w" ~cost:(us c) ignore) costs
      in
      let r = Spin.Ephemeral.execute ~budget:(us budget) prog in
      let rec affordable acc n = function
        | [] -> n
        | c :: rest ->
            if acc + c <= budget then affordable (acc + c) (n + 1) rest else n
      in
      r.Spin.Ephemeral.committed = affordable 0 0 costs)

(* ---- Dispatcher -------------------------------------------------------- *)

let mk_dispatcher () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"cpu" in
  (e, cpu, Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs ())

let dispatcher_basic_raise () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "test" in
  let got = ref [] in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:(us 1) (fun x -> got := x :: !got)
  in
  Spin.Dispatcher.raise ev 42;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "delivered" [ 42 ] !got;
  Alcotest.(check int) "raises" 1 (Spin.Dispatcher.raises d);
  Alcotest.(check int) "invocations" 1 (Spin.Dispatcher.invocations d)

let dispatcher_guards_filter () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "test" in
  let evens = ref 0 and odds = ref 0 in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun x -> x mod 2 = 0) ~cost:(us 1)
      (fun _ -> incr evens)
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun x -> x mod 2 = 1) ~cost:(us 1)
      (fun _ -> incr odds)
  in
  List.iter (Spin.Dispatcher.raise ev) [ 1; 2; 3; 4; 5 ];
  Sim.Engine.run e;
  Alcotest.(check int) "evens" 2 !evens;
  Alcotest.(check int) "odds" 3 !odds;
  Alcotest.(check int) "guard evals: every guard, every raise" 10
    (Spin.Dispatcher.guard_evals d)

let dispatcher_multiple_handlers () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "test" in
  let order = ref [] in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:(us 1) (fun _ -> order := "h1" :: !order)
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:(us 1) (fun _ -> order := "h2" :: !order)
  in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  Alcotest.(check (list string)) "install order" [ "h1"; "h2" ] (List.rev !order);
  Alcotest.(check int) "handler count" 2 (Spin.Dispatcher.handler_count ev)

let dispatcher_uninstall () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "test" in
  let n = ref 0 in
  let un = Spin.Dispatcher.install ev ~cost:(us 1) (fun _ -> incr n) in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  un ();
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  Alcotest.(check int) "only before uninstall" 1 !n;
  Alcotest.(check int) "no handlers left" 0 (Spin.Dispatcher.handler_count ev)

let dispatcher_cost_charged () =
  let e, cpu, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "test" in
  let (_ : unit -> unit) = Spin.Dispatcher.install ev ~cost:(us 10) ignore in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  (* dispatch 0.4 + guard 0.3 + handler 10 *)
  Alcotest.(check int) "cpu busy = dispatch + guard + handler" 10_700
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu))

let dispatcher_dyncost () =
  let e, cpu, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "test" in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:(us 1) ~dyncost:(fun n -> us n) ignore
  in
  Spin.Dispatcher.raise ev 5;
  Sim.Engine.run e;
  Alcotest.(check int) "dyncost added" 6_700
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu))

let dispatcher_thread_mode_cost () =
  let e, cpu, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d ~mode:Spin.Dispatcher.Thread "test" in
  let (_ : unit -> unit) = Spin.Dispatcher.install ev ~cost:(us 10) ignore in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  (* + the default 12us thread spawn *)
  Alcotest.(check int) "thread spawn charged" 22_700
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu))

let dispatcher_ephemeral_and_termination () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "test" in
  let committed = ref 0 in
  let prog _ =
    List.init 4 (fun _ -> Spin.Ephemeral.work ~label:"w" ~cost:(us 5) (fun () -> incr committed))
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~budget:(us 12) prog
  in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  Alcotest.(check int) "prefix committed" 2 !committed;
  Alcotest.(check int) "termination counted" 1 (Spin.Dispatcher.terminations d)

let dispatcher_mode_switch () =
  let _, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "test" in
  Alcotest.(check bool) "default interrupt" true
    (Spin.Dispatcher.mode ev = Spin.Dispatcher.Interrupt);
  Spin.Dispatcher.set_mode ev Spin.Dispatcher.Thread;
  Alcotest.(check bool) "switched" true
    (Spin.Dispatcher.mode ev = Spin.Dispatcher.Thread)

(* ---- Kernel ------------------------------------------------------------ *)

let kernel_interfaces () =
  let e = Sim.Engine.create () in
  let k = Spin.Kernel.create e ~name:"host" in
  let i = Spin.Kernel.declare_interface k "Ether" in
  let i' = Spin.Kernel.declare_interface k "Ether" in
  Alcotest.(check bool) "find-or-create returns same" true (i == i');
  Spin.Interface.export i ~sym:"op" int_w 9;
  Alcotest.(check bool) "root domain sees it" true
    (Spin.Domain.can_resolve (Spin.Kernel.root_domain k) ~iface:"Ether" ~sym:"op");
  let d = Spin.Kernel.restricted_domain k "app" [ "Ether" ] in
  Alcotest.(check bool) "restricted resolves" true
    (Spin.Domain.can_resolve d ~iface:"Ether" ~sym:"op");
  Alcotest.check_raises "unknown interface"
    (Invalid_argument "Kernel.restricted_domain: no interface Nope") (fun () ->
      ignore (Spin.Kernel.restricted_domain k "x" [ "Nope" ]))

let kernel_link_end_to_end () =
  let e = Sim.Engine.create () in
  let k = Spin.Kernel.create e ~name:"host" in
  let i = Spin.Kernel.declare_interface k "Svc" in
  Spin.Interface.export i ~sym:"op" int_w 5;
  let d = Spin.Kernel.restricted_domain k "app" [ "Svc" ] in
  let got = ref 0 in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e" ~imports:[ ("Svc", "op") ]
      (fun linkage -> got := linkage.get int_w ~iface:"Svc" ~sym:"op")
  in
  (match Spin.Kernel.link k ~domain:d ext with
  | Ok _ -> Alcotest.(check int) "linked and resolved" 5 !got
  | Error f -> Alcotest.failf "link failed: %a" Spin.Extension.pp_failure f)

let suite =
  [
    ( "spin.univ",
      [ tc "roundtrip" univ_roundtrip; tc "witness isolation" univ_type_isolation ] );
    ( "spin.domain",
      [ tc "interface basics" interface_basics; tc "resolution" domain_resolution ] );
    ( "spin.linker",
      [
        tc "successful link" link_ok;
        tc "rejects unsigned" link_rejects_unsigned;
        tc "rejects unresolved symbols" link_rejects_unresolved;
        tc "rejects undeclared gets" link_rejects_undeclared_get;
        tc "rejects type clashes" link_rejects_type_clash;
        tc "failed init rolls back" link_failed_init_rolls_back;
        tc "unlink runs cleanups in reverse" unlink_runs_cleanups;
        tc "compiler rejects duplicate imports" compiler_rejects_duplicate_imports;
      ] );
    ( "spin.ephemeral",
      [
        tc "commits all without budget" ephemeral_commits_all_without_budget;
        tc "budget terminates between actions" ephemeral_budget_terminates;
        tc "exact budget boundary" ephemeral_budget_exact_boundary;
        tc "plan is pure" ephemeral_plan_no_side_effects;
        tc "enqueue/count helpers" ephemeral_helpers;
        prop ephemeral_budget_prefix;
      ] );
    ( "spin.dispatcher",
      [
        tc "raise delivers" dispatcher_basic_raise;
        tc "guards demultiplex" dispatcher_guards_filter;
        tc "multiple handlers in order" dispatcher_multiple_handlers;
        tc "uninstall" dispatcher_uninstall;
        tc "costs charged to cpu" dispatcher_cost_charged;
        tc "dyncost" dispatcher_dyncost;
        tc "thread mode spawn cost" dispatcher_thread_mode_cost;
        tc "ephemeral budget termination" dispatcher_ephemeral_and_termination;
        tc "mode switch" dispatcher_mode_switch;
      ] );
    ( "spin.kernel",
      [
        tc "interface registry and domains" kernel_interfaces;
        tc "link through the kernel" kernel_link_end_to_end;
      ] );
  ]

(* Random install/uninstall interleavings keep handler bookkeeping
   consistent, and every surviving handler still fires. *)
let dispatcher_install_model =
  QCheck.Test.make ~count:80 ~name:"install/uninstall model"
    QCheck.(list (pair bool (int_bound 7)))
    (fun ops ->
      let e = Sim.Engine.create () in
      let cpu = Sim.Cpu.create e ~name:"c" in
      let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs () in
      let ev = Spin.Dispatcher.event d "m" in
      let installed : (int, int ref * (unit -> unit)) Hashtbl.t =
        Hashtbl.create 8
      in
      let next = ref 0 in
      List.iter
        (fun (is_install, slot) ->
          if is_install then begin
            let counter = ref 0 in
            let un =
              Spin.Dispatcher.install ev ~cost:Sim.Stime.zero (fun () ->
                  incr counter)
            in
            Hashtbl.replace installed !next (counter, un);
            incr next
          end
          else begin
            (* uninstall an arbitrary existing handler *)
            let keys = Hashtbl.fold (fun k _ acc -> k :: acc) installed [] in
            match List.nth_opt (List.sort compare keys) (slot mod max 1 (List.length keys)) with
            | Some k when keys <> [] ->
                let _, un = Hashtbl.find installed k in
                un ();
                Hashtbl.remove installed k
            | _ -> ()
          end)
        ops;
      Alcotest.(check int) "count matches model" (Hashtbl.length installed)
        (Spin.Dispatcher.handler_count ev);
      Spin.Dispatcher.raise ev ();
      Sim.Engine.run e;
      Hashtbl.fold (fun _ (c, _) acc -> acc && !c = 1) installed true)

let suite =
  suite @ [ ("spin.dispatcher_model", [ prop dispatcher_install_model ]) ]

(* Ephemeral handlers on a thread-mode event still pay the spawn and
   still terminate transactionally. *)
let ephemeral_in_thread_mode () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs () in
  let ev = Spin.Dispatcher.event d ~mode:Spin.Dispatcher.Thread "t" in
  let committed = ref 0 in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install_ephemeral ev ~budget:(us 7) (fun () ->
        List.init 3 (fun _ ->
            Spin.Ephemeral.work ~label:"w" ~cost:(us 3) (fun () ->
                incr committed)))
  in
  Spin.Dispatcher.raise ev ();
  Sim.Engine.run e;
  Alcotest.(check int) "prefix committed" 2 !committed;
  Alcotest.(check int) "termination counted" 1 (Spin.Dispatcher.terminations d);
  (* demux (0.4+0.3) + spawn 12 + consumed 7 *)
  Alcotest.(check int) "spawn + consumed charged" 19_700
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu))

let suite =
  suite @ [ ("spin.eph_thread", [ tc "ephemeral in thread mode" ephemeral_in_thread_mode ]) ]

(* ---- Dispatch index ----------------------------------------------------- *)

(* An int event indexed on the payload's own value: handler for key [k]
   only sees raises of [k]. *)
let mk_keyed_event d =
  let ev = Spin.Dispatcher.event d "keyed" in
  Spin.Dispatcher.set_keyfn ev (fun x -> [ x ]);
  ev

let keyed_skips_other_buckets () =
  let e, _, d = mk_dispatcher () in
  let ev = mk_keyed_event d in
  let hits = Array.make 4 0 in
  for k = 0 to 3 do
    let (_ : unit -> unit) =
      Spin.Dispatcher.install ev ~guard:(fun x -> x = k) ~key:k
        ~cost:Sim.Stime.zero
        (fun _ -> hits.(k) <- hits.(k) + 1)
    in
    ()
  done;
  Alcotest.(check int) "all keyed" 4 (Spin.Dispatcher.indexed_count ev);
  Alcotest.(check int) "none linear" 0 (Spin.Dispatcher.linear_count ev);
  List.iter (Spin.Dispatcher.raise ev) [ 2; 2; 3 ];
  Sim.Engine.run e;
  Alcotest.(check (list int)) "only matching buckets fired" [ 0; 0; 2; 1 ]
    (Array.to_list hits);
  (* each raise evaluated exactly its own bucket's guard, never the
     other three *)
  Alcotest.(check int) "guard evals = candidates only" 3
    (Spin.Dispatcher.guard_evals d);
  Alcotest.(check int) "every raise used the index" 3
    (Spin.Dispatcher.index_lookups d)

(* Install order is preserved even when delivery mixes index buckets and
   the unkeyed linear fallback. *)
let keyed_preserves_install_order () =
  let e, _, d = mk_dispatcher () in
  let ev = mk_keyed_event d in
  let order = ref [] in
  let record tag = fun _ -> order := tag :: !order in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun x -> x = 7) ~key:7
      ~cost:Sim.Stime.zero (record "k1")
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:Sim.Stime.zero (record "u1")
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun x -> x = 7) ~key:7
      ~cost:Sim.Stime.zero (record "k2")
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~cost:Sim.Stime.zero (record "u2")
  in
  Spin.Dispatcher.raise ev 7;
  Sim.Engine.run e;
  Alcotest.(check (list string)) "bucket and linear interleave in install order"
    [ "k1"; "u1"; "k2"; "u2" ] (List.rev !order)

let keyed_uninstall_while_queued () =
  let e, _, d = mk_dispatcher () in
  let ev = mk_keyed_event d in
  let n = ref 0 in
  let un =
    Spin.Dispatcher.install ev ~guard:(fun x -> x = 1) ~key:1
      ~cost:Sim.Stime.zero (fun _ -> incr n)
  in
  Spin.Dispatcher.raise ev 1;
  (* uninstalled after the raise but before the engine delivers it *)
  un ();
  Sim.Engine.run e;
  Alcotest.(check int) "uninstalled-while-queued does not fire" 0 !n;
  Alcotest.(check int) "bucket bookkeeping" 0 (Spin.Dispatcher.indexed_count ev);
  (* the key's bucket is gone; a fresh raise hits an empty candidate set *)
  Spin.Dispatcher.raise ev 1;
  Sim.Engine.run e;
  Alcotest.(check int) "still silent" 0 !n

let keyed_raise_cost () =
  let e, cpu, d = mk_dispatcher () in
  let ev = mk_keyed_event d in
  (* two buckets; only one is consulted *)
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun x -> x = 1) ~key:1 ~cost:(us 10)
      ignore
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun x -> x = 2) ~key:2 ~cost:(us 10)
      ignore
  in
  Spin.Dispatcher.raise ev 1;
  Sim.Engine.run e;
  (* merged-tree dispatch: dispatch 0.4 + one tree switch 0.1 + the
     matching leaf's one residual guard 0.3 + handler 10; the second
     handler's guard is neither run nor charged *)
  Alcotest.(check int) "tree raise charges the walk + matching guards"
    10_800
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu));
  (* and the bucket-index ablation charges hash + guard instead *)
  Spin.Dispatcher.set_tree_dispatch d false;
  Spin.Dispatcher.raise ev 1;
  Sim.Engine.run e;
  Alcotest.(check int) "indexed raise charges one hash + matching guards"
    (10_800 + 10_950)
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu))

let keyed_guard_fault_contained () =
  let e, _, d = mk_dispatcher () in
  let ev = mk_keyed_event d in
  let survivor = ref 0 in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun _ -> failwith "bad guard") ~key:5
      ~cost:Sim.Stime.zero ignore
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev ~guard:(fun x -> x = 5) ~key:5
      ~cost:Sim.Stime.zero (fun _ -> incr survivor)
  in
  Spin.Dispatcher.raise ev 5;
  Sim.Engine.run e;
  Alcotest.(check int) "fault counted" 1 (Spin.Dispatcher.faults d);
  Alcotest.(check int) "faulting handler uninstalled" 1
    (Spin.Dispatcher.indexed_count ev);
  Alcotest.(check int) "same-bucket survivor still fired" 1 !survivor

(* The model property again, but against a keyed event with handlers
   spread over buckets and the linear fallback at random. *)
let keyed_install_model =
  QCheck.Test.make ~count:80 ~name:"keyed install/uninstall model"
    QCheck.(list (triple bool (int_bound 7) (option (int_bound 3))))
    (fun ops ->
      let e = Sim.Engine.create () in
      let cpu = Sim.Cpu.create e ~name:"c" in
      let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs () in
      let ev = Spin.Dispatcher.event d "m" in
      Spin.Dispatcher.set_keyfn ev (fun x -> [ x ]);
      let installed : (int, int ref * (unit -> unit)) Hashtbl.t =
        Hashtbl.create 8
      in
      let next = ref 0 in
      List.iter
        (fun (is_install, slot, key) ->
          if is_install then begin
            let counter = ref 0 in
            let guard =
              match key with None -> fun _ -> true | Some k -> fun x -> x = k
            in
            let un =
              Spin.Dispatcher.install ev ~guard ?key ~cost:Sim.Stime.zero
                (fun _ -> incr counter)
            in
            Hashtbl.replace installed !next (counter, un);
            incr next
          end
          else begin
            let keys = Hashtbl.fold (fun k _ acc -> k :: acc) installed [] in
            match
              List.nth_opt (List.sort compare keys)
                (slot mod max 1 (List.length keys))
            with
            | Some k when keys <> [] ->
                let _, un = Hashtbl.find installed k in
                un ();
                Hashtbl.remove installed k
            | _ -> ()
          end)
        ops;
      Alcotest.(check int) "count matches model" (Hashtbl.length installed)
        (Spin.Dispatcher.handler_count ev);
      Alcotest.(check int) "keyed + linear = total"
        (Spin.Dispatcher.handler_count ev)
        (Spin.Dispatcher.indexed_count ev + Spin.Dispatcher.linear_count ev);
      (* raise every key value: each surviving handler must fire exactly
         once (keyed ones on their own key's raise, unkeyed on all four —
         so unkeyed fire 4x) *)
      for k = 0 to 3 do
        Spin.Dispatcher.raise ev k
      done;
      Sim.Engine.run e;
      Hashtbl.fold
        (fun _ (c, _) acc -> acc && (!c = 1 || !c = 4))
        installed true)

(* ---- Merged decision tree ----------------------------------------------- *)

(* A two-dimension event: payload is (a, b); dim 0 reads a, dim 1 reads
   b, -1 meaning absent.  Exercises prefix sharing (two handlers pinning
   the same a share the dim-0 edge), exact-path guard skipping,
   leaf residuals for opaque guards, and unsatisfiable-handler drop. *)
let tree_merges_and_skips () =
  let e, _, d = mk_dispatcher () in
  let ev = Spin.Dispatcher.event d "tree2d" in
  Spin.Dispatcher.set_keyvfn ev ~dims:2 (fun (a, b) dst ->
      dst.(0) <- a;
      dst.(1) <- b);
  let key dim v = (dim lsl 16) lor v in
  let hits = Hashtbl.create 8 in
  let hit tag = fun _ ->
    Hashtbl.replace hits tag (1 + Option.value ~default:0 (Hashtbl.find_opt hits tag))
  in
  let evals = ref 0 in
  (* exact on (a=1, b=2): the walk proves it, the guard must not run *)
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev
      ~guard:(fun _ -> incr evals; true)
      ~keys:[ key 0 1; key 1 2 ] ~exact:true ~cost:Sim.Stime.zero (hit "exact12")
  in
  (* keyed on a=1 only, inexact: leaf residual, guard still runs *)
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev
      ~guard:(fun (a, b) -> incr evals; a = 1 && b mod 2 = 0)
      ~key:(key 0 1) ~cost:Sim.Stime.zero (hit "resid1x")
  in
  (* pins two values on one dimension: unsatisfiable, dropped *)
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ev
      ~guard:(fun _ -> incr evals; false)
      ~keys:[ key 0 3; key 0 4 ] ~cost:Sim.Stime.zero (hit "unsat")
  in
  (match Spin.Dispatcher.compiled_tree ev with
  | None -> Alcotest.fail "event should compile a tree"
  | Some (Spin.Dispatcher.Tree_switch { tv_dim; tv_cases; _ }) ->
      Alcotest.(check int) "root switches on dim 0" 0 tv_dim;
      (* the unsatisfiable handler contributed no jump-table entry *)
      Alcotest.(check (list int)) "cases are the satisfiable pins" [ 1 ]
        (List.map fst tv_cases)
  | Some (Spin.Dispatcher.Tree_leaf _) -> Alcotest.fail "root should switch");
  Spin.Dispatcher.raise ev (1, 2);  (* exact12 proven + resid1x accepted *)
  Spin.Dispatcher.raise ev (1, 3);  (* exact12 out (b<>2), resid1x rejects *)
  Spin.Dispatcher.raise ev (9, 9);  (* default path: nothing *)
  Sim.Engine.run e;
  let count tag = Option.value ~default:0 (Hashtbl.find_opt hits tag) in
  Alcotest.(check int) "exact handler fired without its guard" 1
    (count "exact12");
  Alcotest.(check int) "residual fired where its guard said yes" 1
    (count "resid1x");
  Alcotest.(check int) "unsatisfiable handler never fired" 0 (count "unsat");
  (* residual evaluated on the two a=1 raises; the exact and the dropped
     guards never ran *)
  Alcotest.(check int) "only residual guards evaluated" 2 !evals;
  Alcotest.(check int) "every raise walked the tree" 3
    (Spin.Dispatcher.tree_raises ev)

(* Churn invalidates the compiled tree through the generation counter:
   the rebuilt tree must reflect the new handler set. *)
let tree_rebuilds_on_churn () =
  let e, _, d = mk_dispatcher () in
  let ev = mk_keyed_event d in
  let hits = Array.make 3 0 in
  let ins k =
    Spin.Dispatcher.install ev ~guard:(fun x -> x = k) ~key:k ~exact:true
      ~cost:Sim.Stime.zero (fun _ -> hits.(k) <- hits.(k) + 1)
  in
  let un0 = ins 0 in
  let (_ : unit -> unit) = ins 1 in
  Spin.Dispatcher.raise ev 0;
  Sim.Engine.run e;
  un0 ();
  let (_ : unit -> unit) = ins 2 in
  Spin.Dispatcher.raise ev 0;
  Spin.Dispatcher.raise ev 2;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "rebuilt tree routes the new set" [ 1; 0; 1 ]
    (Array.to_list hits)

let suite =
  suite
  @ [
      ( "spin.dispatch_index",
        [
          tc "index skips other buckets" keyed_skips_other_buckets;
          tc "install order across buckets" keyed_preserves_install_order;
          tc "uninstall while queued" keyed_uninstall_while_queued;
          tc "indexed raise cost" keyed_raise_cost;
          tc "guard fault in a bucket" keyed_guard_fault_contained;
          prop keyed_install_model;
        ] );
      ( "spin.dispatch_tree",
        [
          tc "merge, prefix share, exact skip" tree_merges_and_skips;
          tc "rebuild on churn" tree_rebuilds_on_churn;
        ] );
    ]
