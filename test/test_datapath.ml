(* Counter-asserted tests for the zero-copy scatter-gather datapath:
   the Metrics counters turn "no copies here" from a claim into a
   checkable invariant. *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t

let ip_b = Experiments.Common.ip_b

(* ---- property: random op sequences match a string model --------------- *)

(* Drive an mbuf and a plain-string model through the same random
   sequence of trim/prepend/extend/concat/pullup/sub operations; the
   mbuf's bytes must match the model after every program. *)
let apply_op (m, s) (op, x, y) =
  let len = String.length s in
  match op mod 7 with
  | 0 ->
      let n = x mod (len + 1) in
      Mbuf.trim_front m n;
      (m, String.sub s n (len - n))
  | 1 ->
      let n = x mod (len + 1) in
      Mbuf.trim_back m n;
      (m, String.sub s 0 (len - n))
  | 2 ->
      let n = x mod 32 in
      View.fill (Mbuf.prepend m n) 'P';
      (m, String.make n 'P' ^ s)
  | 3 ->
      let n = x mod 32 in
      View.fill (Mbuf.extend_back m n) 'E';
      (m, s ^ String.make n 'E')
  | 4 ->
      let extra =
        String.init (x mod 16) (fun i -> Char.chr (33 + ((y + i) mod 64)))
      in
      Mbuf.concat m (Mbuf.of_string extra);
      (m, s ^ extra)
  | 5 ->
      if len > 0 then Mbuf.pullup m ((x mod len) + 1);
      (m, s)
  | _ ->
      if len = 0 then (m, s)
      else begin
        let off = x mod len in
        let n = y mod (len - off + 1) in
        (Mbuf.sub m ~off ~len:n, String.sub s off n)
      end

let mbuf_model =
  QCheck.Test.make ~name:"random op sequences preserve bytes" ~count:500
    QCheck.(
      pair
        (string_of_size Gen.(0 -- 48))
        (small_list (triple (int_bound 1000) (int_bound 1000) (int_bound 1000))))
    (fun (init, ops) ->
      let final_m, final_s =
        List.fold_left apply_op (Mbuf.of_string init, init) ops
      in
      let ok = Mbuf.to_string final_m = final_s in
      ok && Mbuf.length final_m = String.length final_s)

(* ---- counter-asserted allocation behaviour ---------------------------- *)

let prepend_no_alloc () =
  let m = Mbuf.alloc ~headroom:64 100 in
  Metrics.reset ();
  View.set_u16 (Mbuf.prepend m 42) 0 0xbeef;
  let s = Metrics.snapshot () in
  Alcotest.(check int) "no copies" 0 s.Metrics.copies;
  Alcotest.(check int) "no fresh buffers" 0 s.Metrics.allocs;
  Alcotest.(check int) "no recycled buffers" 0 s.Metrics.recycled;
  Alcotest.(check int) "still one segment" 1 (Mbuf.num_segs m);
  Alcotest.(check int) "grew" 142 (Mbuf.length m)

let freelist_recycles () =
  Mbuf.drain_freelist ();
  Metrics.reset ();
  let m = Mbuf.alloc 1000 in
  Mbuf.free m;
  let m2 = Mbuf.alloc 1000 in
  let s = Metrics.snapshot () in
  Alcotest.(check int) "one fresh buffer" 1 s.Metrics.allocs;
  Alcotest.(check int) "second came from the free list" 1 s.Metrics.recycled;
  Alcotest.(check bool) "recycled buffer reads as zeros" true
    (String.for_all (fun c -> c = '\000') (Mbuf.to_string m2))

let sub_is_zero_copy () =
  let m = Mbuf.of_string "0123456789" in
  Metrics.reset ();
  let s = Mbuf.sub m ~off:2 ~len:5 in
  Alcotest.(check int) "no copies" 0 (Metrics.snapshot ()).Metrics.copies;
  (* shares bytes with the parent *)
  View.set_u8 (Mbuf.view m) 2 (Char.code 'Z');
  Alcotest.(check string) "window contents (shared)" "Z3456" (Mbuf.to_string s)

let shared_headroom_not_clobbered () =
  (* two sub-chains over one store: prepending into the first must not
     scribble on bytes the second can see, so the prepend must allocate a
     fresh header segment instead of using the shared headroom *)
  let m = Mbuf.of_string "abcdefgh" in
  let s1 = Mbuf.sub m ~off:4 ~len:4 in
  let s2 = Mbuf.sub m ~off:0 ~len:8 in
  View.fill (Mbuf.prepend s1 4) 'H';
  Alcotest.(check string) "prepend lands in front" "HHHHefgh" (Mbuf.to_string s1);
  Alcotest.(check bool) "fresh segment used" true (Mbuf.num_segs s1 > 1);
  Alcotest.(check string) "sibling untouched" "abcdefgh" (Mbuf.to_string s2)

(* ---- double-free detection ------------------------------------------- *)

let mbuf_double_free_raises () =
  let m = Mbuf.alloc 10 in
  Mbuf.free m;
  Alcotest.check_raises "second free rejected"
    (Invalid_argument "Mbuf.free: double free") (fun () -> Mbuf.free m)

let pool_underflow_raises () =
  let pool = Pool.create ~name:"ring" ~capacity:4 () in
  Alcotest.(check bool) "slot granted" true (Pool.reserve pool);
  Pool.release pool;
  (match Pool.release pool with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "underflow not detected");
  Alcotest.(check int) "underflow counted" 1 (Pool.underflows pool)

let pool_reserve_release () =
  let pool = Pool.create ~capacity:2 () in
  Alcotest.(check bool) "slot 1" true (Pool.reserve pool);
  Alcotest.(check bool) "slot 2" true (Pool.reserve pool);
  Alcotest.(check bool) "exhausted" false (Pool.reserve pool);
  Alcotest.(check int) "failure counted" 1 (Pool.failures pool);
  Pool.release pool;
  Alcotest.(check bool) "slot freed up" true (Pool.reserve pool);
  Alcotest.(check int) "peak" 2 (Pool.peak pool)

(* ---- chain-aware checksum ≡ byte-at-a-time reference ------------------ *)

let cksum_chain_vs_reference =
  QCheck.Test.make ~name:"chain cksum = bytewise reference on random chains"
    ~count:500
    QCheck.(small_list (string_of_size Gen.(0 -- 33)))
    (fun parts ->
      (* odd-length interior segments exercised on purpose *)
      let views = List.map View.of_string parts in
      let whole = View.of_string (String.concat "" parts) in
      let fast = Cksum.of_views views in
      fast = Cksum.of_views_bytewise views && fast = Cksum.of_view_bytewise whole)

let cksum_of_mbuf_chain =
  QCheck.Test.make ~name:"of_mbuf on concat chains = flat checksum" ~count:200
    QCheck.(small_list (string_of_size Gen.(0 -- 33)))
    (fun parts ->
      let m = Mbuf.of_string "" in
      List.iter (fun p -> Mbuf.concat m (Mbuf.of_string p)) parts;
      Cksum.of_mbuf m = Cksum.of_view (View.of_string (String.concat "" parts)))

(* ---- the UDP send fast path is copy-free end to end ------------------- *)

let udp_fast_path_zero_copy () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let server =
    match Plexus.Udp_mgr.bind udp_b ~owner:"srv" ~port:7 with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let got = ref "" in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun ctx ->
        got := View.get_string (Plexus.Pctx.view ctx) ~off:0 ~len:(Plexus.Pctx.payload_len ctx))
  in
  let client =
    match Plexus.Udp_mgr.bind udp_a ~owner:"cli" ~port:5000 with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  (* warm up ARP so the measured round is pure datapath *)
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "warmup";
  Sim.Engine.run p.Experiments.Common.engine;
  (* the application writes its payload once, into a headroom-bearing
     buffer it allocated; that production write is not a copy *)
  let payload = Mbuf.alloc 1000 in
  View.set_string (Mbuf.view payload) ~off:0 (String.make 1000 'p');
  Metrics.reset ();
  Plexus.Udp_mgr.send_mbuf udp_a client ~dst:(ip_b, 7) payload;
  Sim.Engine.run p.Experiments.Common.engine;
  let s = Metrics.snapshot () in
  Alcotest.(check string) "payload delivered" (String.make 1000 'p') !got;
  (* headers went into the payload's headroom; the chain crossed the
     device, the wire, the ring and the receive graph without one
     payload-byte copy or buffer allocation *)
  Alcotest.(check int) "zero copies tx->rx" 0 s.Metrics.copies;
  Alcotest.(check int) "zero bytes copied" 0 s.Metrics.bytes_copied;
  Alcotest.(check int) "zero buffer allocations" 0 s.Metrics.allocs

let fragmentation_is_zero_copy () =
  let payload = Mbuf.of_string (String.make 12500 'v') in
  Metrics.reset ();
  let frags = Proto.Ip_frag.fragment ~mtu:1500 payload in
  Alcotest.(check int) "fragment count" 9 (List.length frags);
  let total = List.fold_left (fun a (_, _, f) -> a + Mbuf.length f) 0 frags in
  Alcotest.(check int) "covers the datagram" 12500 total;
  let s = Metrics.snapshot () in
  Alcotest.(check int) "zero copies to fragment 12.5KB" 0 s.Metrics.copies;
  Alcotest.(check int) "zero buffer allocations" 0 s.Metrics.allocs

let suite =
  [
    ( "datapath.zero_copy",
      [
        tc "headroom prepend allocates nothing" prepend_no_alloc;
        tc "free list recycles buffers" freelist_recycles;
        tc "sub shares, does not copy" sub_is_zero_copy;
        tc "shared headroom is not clobbered" shared_headroom_not_clobbered;
        tc "udp fast path: zero copies end to end" udp_fast_path_zero_copy;
        tc "fragmentation: zero copies" fragmentation_is_zero_copy;
      ] );
    ( "datapath.safety",
      [
        tc "mbuf double free raises" mbuf_double_free_raises;
        tc "pool underflow raises and counts" pool_underflow_raises;
        tc "pool reserve/release budget" pool_reserve_release;
      ] );
    ( "datapath.props",
      [ prop mbuf_model; prop cksum_chain_vs_reference; prop cksum_of_mbuf_chain ] );
  ]
