(* The benchmark harness.

   Part 1 — Bechamel microbenchmarks: real (host-machine) costs of the
   mechanisms the paper claims are cheap: event dispatch ("roughly one
   procedure call"), guard evaluation (packet filters), VIEW header
   access, mbuf operations and the Internet checksum.

   Part 2 — the paper-reproduction harness: regenerates every table and
   figure of the evaluation (Figure 5, the section 4.2 throughput table,
   Figure 6, Figure 7), the section 3.3 active-message microbenchmarks
   and the design ablations, printing measured values next to the
   paper's. *)

open Bechamel
open Toolkit

(* ---- Part 1: microbenchmark subjects --------------------------------- *)

(* A dispatcher wired to a live engine; each raise is drained so state
   does not accumulate across benchmark iterations.  Three demux modes:
   [`Linear] scans every guard, [`Indexed] installs every handler under
   its own dispatch key and ablates the merged tree so the raise
   consults one hash bucket, [`Tree] lets the default merged decision
   tree compile the whole set — handlers are installed [~exact] so a
   walk proves its match and the guard closure never runs. *)
let dispatcher_env ~mode n_handlers =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"bench" in
  let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs () in
  let ev = Spin.Dispatcher.event d "bench" in
  (match mode with
  | `Linear -> ()
  | `Indexed ->
      Spin.Dispatcher.set_keyfn ev (fun x -> [ x ]);
      Spin.Dispatcher.set_event_tree ev false
  | `Tree ->
      Spin.Dispatcher.set_keyvfn ev ~dims:1 (fun x dst -> dst.(0) <- x));
  for i = 0 to n_handlers - 1 do
    let (_ : unit -> unit) =
      Spin.Dispatcher.install ev
        ~guard:(fun x -> x = i)
        ?key:(match mode with `Linear -> None | `Indexed | `Tree -> Some i)
        ~exact:(mode = `Tree)
        ~cost:Sim.Stime.zero
        (fun _ -> ())
    in
    ()
  done;
  (engine, ev)

let test_direct_call =
  let f = Sys.opaque_identity (fun x -> x + 1) in
  Test.make ~name:"direct procedure call" (Staged.stage (fun () -> ignore (f 1)))

let mode_name = function
  | `Linear -> "linear"
  | `Indexed -> "indexed"
  | `Tree -> "tree"

(* Linear vs. indexed vs. merged-tree dispatch across handler counts:
   the raise always matches exactly one handler (the middle one), so
   any cost growth is pure demultiplexing overhead. *)
let test_dispatch ~mode n =
  let engine, ev = dispatcher_env ~mode n in
  let target = n / 2 in
  Test.make
    ~name:(Printf.sprintf "dispatch %s (%d handlers)" (mode_name mode) n)
    (Staged.stage (fun () ->
         Spin.Dispatcher.raise ev target;
         Sim.Engine.run engine))

let dispatch_counts = [ 1; 8; 64; 256 ]

(* The many-guard shape the tree exists for: 64 analyzers all watching
   the same traffic (same key, exact guards).  The bucket index puts
   them in one bucket and re-evaluates all 64 guards per raise; the
   merged tree proves all 64 in a single walk. *)
let test_analyzers ~mode =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"bench" in
  let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs () in
  let ev = Spin.Dispatcher.event d "analyzers" in
  (match mode with
  | `Indexed ->
      Spin.Dispatcher.set_keyfn ev (fun x -> [ x ]);
      Spin.Dispatcher.set_event_tree ev false
  | `Tree ->
      Spin.Dispatcher.set_keyvfn ev ~dims:1 (fun x dst -> dst.(0) <- x));
  for _ = 1 to 64 do
    let (_ : unit -> unit) =
      Spin.Dispatcher.install ev
        ~guard:(fun x -> x = 7)
        ~key:7
        ~exact:(mode = `Tree)
        ~cost:Sim.Stime.zero
        (fun _ -> ())
    in
    ()
  done;
  Test.make
    ~name:(Printf.sprintf "dispatch %s (64 analyzers)" (mode_name mode))
    (Staged.stage (fun () ->
         Spin.Dispatcher.raise ev 7;
         Sim.Engine.run engine))

let dispatch_tests =
  List.concat_map
    (fun n ->
      [
        test_dispatch ~mode:`Linear n;
        test_dispatch ~mode:`Indexed n;
        test_dispatch ~mode:`Tree n;
      ])
    dispatch_counts
  @ [ test_analyzers ~mode:`Indexed; test_analyzers ~mode:`Tree ]

let sample_frame =
  let pkt = Mbuf.of_string (String.make 64 '\000') in
  let v = Mbuf.view pkt in
  Proto.Ether.write v
    {
      Proto.Ether.dst = Proto.Ether.Mac.of_int 0x1111;
      src = Proto.Ether.Mac.of_int 0x2222;
      etype = Proto.Ether.etype_ip;
    };
  View.ro v

let test_guard =
  Test.make ~name:"guard: EtherType packet filter"
    (Staged.stage (fun () ->
         ignore
           (Sys.opaque_identity
              (match Proto.Ether.parse sample_frame with
              | Some h -> h.Proto.Ether.etype = Proto.Ether.etype_ip
              | None -> false))))

let test_view_read =
  Test.make ~name:"VIEW: u16+u32 header reads"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (View.get_u16 sample_frame 12));
         ignore (Sys.opaque_identity (View.get_u32 sample_frame 0))))

let test_ipv4_parse =
  let v = View.create 20 in
  Proto.Ipv4.write v
    (Proto.Ipv4.make ~proto:17 ~src:(Proto.Ipaddr.v 10 0 0 1)
       ~dst:(Proto.Ipaddr.v 10 0 0 2) ~payload_len:100 ());
  let v = View.ro v in
  Test.make ~name:"IPv4 header parse + checksum"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Proto.Ipv4.parse v));
         ignore (Sys.opaque_identity (Proto.Ipv4.checksum_valid v))))

let test_mbuf_alloc =
  Test.make ~name:"mbuf alloc (1500B)"
    (Staged.stage (fun () -> ignore (Sys.opaque_identity (Mbuf.alloc 1500))))

let test_mbuf_prepend =
  Test.make ~name:"mbuf alloc+prepend header"
    (Staged.stage (fun () ->
         let m = Mbuf.alloc 100 in
         ignore (Sys.opaque_identity (Mbuf.prepend m 14))))

let test_cksum_1500 =
  let v = View.of_string (String.make 1500 'x') in
  Test.make ~name:"Internet checksum (1500B)"
    (Staged.stage (fun () -> ignore (Sys.opaque_identity (Cksum.of_view v))))

let test_tcp_encode =
  let hdr =
    {
      Proto.Tcp_wire.src_port = 1;
      dst_port = 2;
      seq = Proto.Tcp_wire.Seq.of_int 1;
      ack = Proto.Tcp_wire.Seq.of_int 2;
      flags = Proto.Tcp_wire.Flags.ack;
      window = 100;
    }
  in
  let payload = String.make 512 'p' in
  Test.make ~name:"TCP segment encode (512B, checksummed)"
    (Staged.stage (fun () ->
         ignore
           (Sys.opaque_identity
              (Proto.Tcp_wire.to_packet ~src:(Proto.Ipaddr.v 10 0 0 1)
                 ~dst:(Proto.Ipaddr.v 10 0 0 2) hdr payload))))

let bench_ctx =
  lazy
    (let engine = Sim.Engine.create () in
     let host =
       Netsim.Host.create engine ~name:"h" ~ip:(Proto.Ipaddr.v 10 0 0 1)
     in
     let dev = Netsim.Host.add_device host (Netsim.Costs.loopback ()) in
     Plexus.Pctx.make dev (Mbuf.ro (Mbuf.of_string (String.make 64 'p'))))

(* The 5-node filter of the original microbenchmark and a richer 15-node
   demultiplexing predicate (the ablation's), each interpreted and
   compiled.  (Compilation folds the 5-node filter's [Or (_, True)] to a
   single instruction; the 15-node filter keeps real work on both
   sides.) *)
let bench_filter_5 =
  Plexus.Filter.(
    And (Gt (Payload_len, 0), Or (Eq (U8 (Cur, 0), Char.code 'p'), True)))

let bench_filter_15 =
  Plexus.Filter.(
    And
      ( And (Eq (U8 (Cur, 0), Char.code 'p'), Gt (Payload_len, 0)),
        And
          ( Or (Eq (U8 (Cur, 1), Char.code 'p'), Or (Eq (U8 (Cur, 2), 0), Eq (U8 (Cur, 3), 1))),
            Not (Or (Eq (Payload_len, 0), Gt (Payload_len, 65536))) ) ))

let test_filter_interp name filter =
  let ctx = Lazy.force bench_ctx in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Plexus.Filter.eval filter ctx))))

let test_filter_compiled name filter =
  let ctx = Lazy.force bench_ctx in
  let prog = Plexus.Filter.compile filter in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Plexus.Filter.run prog ctx))))

let test_filter_eval = test_filter_interp "interpreted packet filter (5 nodes)" bench_filter_5

let filter_tests =
  [
    test_filter_eval;
    test_filter_compiled "compiled packet filter (5 nodes)" bench_filter_5;
    test_filter_interp "interpreted packet filter (15 nodes)" bench_filter_15;
    test_filter_compiled "compiled packet filter (15 nodes)" bench_filter_15;
  ]

let test_link_unlink =
  let iface = Spin.Interface.create "Svc" in
  let w : int Spin.Univ.witness = Spin.Univ.witness () in
  Spin.Interface.export iface ~sym:"op" w 7;
  let domain = Spin.Domain.of_interfaces "d" [ iface ] in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e" ~imports:[ ("Svc", "op") ]
      (fun linkage -> ignore (linkage.get w ~iface:"Svc" ~sym:"op"))
  in
  Test.make ~name:"dynamic link + unlink"
    (Staged.stage (fun () ->
         match Spin.Linker.link ~domain ext with
         | Ok l -> Spin.Linker.unlink l
         | Error _ -> ()))

let test_ephemeral_plan =
  let prog =
    List.init 4 (fun _ ->
        Spin.Ephemeral.work ~label:"w" ~cost:(Sim.Stime.us 5) ignore)
  in
  Test.make ~name:"ephemeral plan+commit (4 actions)"
    (Staged.stage (fun () ->
         ignore
           (Sys.opaque_identity
              (Spin.Ephemeral.execute ~budget:(Sim.Stime.us 12) prog))))

(* ---- datapath subjects (the zero-copy PR's trajectory record) --------- *)

(* Checksum: the chain-aware word-at-a-time fold against the
   byte-at-a-time reference, on a contiguous MTU frame and on a 12.5 KB
   datagram split into fragment-sized segments (odd-capable chain fold,
   no pullup). *)
let cksum_views_of ~seg_len total =
  let rec go off acc =
    if off >= total then List.rev acc
    else
      let n = min seg_len (total - off) in
      go (off + n) (View.of_string (String.make n 'x') :: acc)
  in
  go 0 []

let test_cksum_chain_1500 =
  let v = [ View.of_string (String.make 1500 'x') ] in
  Test.make ~name:"cksum chain-aware (1500B)"
    (Staged.stage (fun () -> ignore (Sys.opaque_identity (Cksum.of_views v))))

let test_cksum_byte_1500 =
  let v = [ View.of_string (String.make 1500 'x') ] in
  Test.make ~name:"cksum byte-at-a-time (1500B)"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Cksum.of_views_bytewise v))))

let test_cksum_chain_12500 =
  let vs = cksum_views_of ~seg_len:1480 12500 in
  Test.make ~name:"cksum chain-aware (12.5KB chain)"
    (Staged.stage (fun () -> ignore (Sys.opaque_identity (Cksum.of_views vs))))

let test_cksum_byte_12500 =
  let vs = cksum_views_of ~seg_len:1480 12500 in
  Test.make ~name:"cksum byte-at-a-time (12.5KB chain)"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Cksum.of_views_bytewise vs))))

let test_mbuf_alloc_recycle =
  Test.make ~name:"mbuf alloc+free 1500B (recycling)"
    (Staged.stage (fun () ->
         let m = Mbuf.alloc 1500 in
         Mbuf.free m))

let test_fragment_12500 =
  let payload = Mbuf.of_string (String.make 12500 'v') in
  Test.make ~name:"fragment 12.5KB into sub-chains"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Proto.Ip_frag.fragment ~mtu:1500 payload))))

(* Full simulated-stack round trip: application mbuf -> UDP/IP/ether
   headroom prepends -> device -> wire -> ring -> protocol graph ->
   application handler, per operation. *)
let udp_env =
  lazy
    (let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
     let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
     let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
     let bind_exn udp ~owner ~port =
       match Plexus.Udp_mgr.bind udp ~owner ~port with
       | Ok ep -> ep
       | Error _ -> failwith "bench: bind failed"
     in
     let server = bind_exn udp_b ~owner:"srv" ~port:7 in
     let (_ : unit -> unit) =
       Plexus.Udp_mgr.install_recv udp_b server (fun _ -> ())
     in
     let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
     (* warm up ARP so measured rounds are pure datapath *)
     Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 7) "warm";
     Sim.Engine.run p.Experiments.Common.engine;
     (p.Experiments.Common.engine, udp_a, client))

let test_udp_roundtrip =
  Test.make ~name:"udp tx/rx round trip (1000B, full stack)"
    (Staged.stage (fun () ->
         let engine, udp, client = Lazy.force udp_env in
         let payload = Mbuf.alloc 1000 in
         Plexus.Udp_mgr.send_mbuf udp client
           ~dst:(Experiments.Common.ip_b, 7)
           payload;
         Sim.Engine.run engine))

(* ---- flow-path cache subjects (the per-flow fast-path PR) ------------- *)

(* The steady state the flow cache is for: the full stack with
   application extensions installed along the flow's path — a wire tap on
   the ether event, a firewall monitor and a byte-accounting monitor on
   the ip event, the paper's canonical extension trio — and span tracing
   active on the receiving kernel, the configuration `plexus-cli observe`
   runs.  Uncached, every packet re-pays demux, guard evaluation, one
   work item per accepted handler and a span per dispatch step at each
   layer; path-cached, one signature lookup replays the recorded chain
   synchronously and emits a single cache_hit span.  Built twice, cache
   off and on, so the two subjects differ only in the cache switch. *)
let steady_env ~flowcache =
  lazy
    (let p =
       Experiments.Common.plexus_pair ~flowcache (Netsim.Costs.ethernet ())
     in
     let b = p.Experiments.Common.b in
     let kernel = Netsim.Host.kernel (Plexus.Stack.host b) in
     let ring = Observe.Trace.Ring.create ~capacity:4096 () in
     Observe.Trace.set_sink (Spin.Kernel.trace kernel) (Observe.Trace.Ring ring);
     let ether_ev =
       Plexus.Graph.recv_event (Plexus.Ether_mgr.node (Plexus.Stack.ether b))
     in
     let ip_ev =
       Plexus.Graph.recv_event (Plexus.Ip_mgr.node (Plexus.Stack.ip b))
     in
     let frames = ref 0 and bytes = ref 0 in
     let (_ : unit -> unit) =
       Spin.Dispatcher.install ether_ev
         ~guard:(fun _ -> true)
         ~cacheable:true ~label:"tap" ~cost:(Sim.Stime.us 2)
         (fun _ -> incr frames)
     in
     let udp_guard ctx =
       match ctx.Plexus.Pctx.ip with
       | Some ip -> ip.Proto.Ipv4.proto = Proto.Ipv4.proto_udp
       | None -> false
     in
     let (_ : unit -> unit) =
       Spin.Dispatcher.install ip_ev ~guard:udp_guard ~cacheable:true
         ~label:"firewall" ~cost:(Sim.Stime.us 2)
         (fun _ -> ())
     in
     let (_ : unit -> unit) =
       Spin.Dispatcher.install ip_ev ~guard:udp_guard ~cacheable:true
         ~label:"acct" ~cost:(Sim.Stime.us 1)
         (fun ctx -> bytes := !bytes + Plexus.Pctx.payload_len ctx)
     in
     let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
     let udp_b = Plexus.Stack.udp b in
     let bind_exn udp ~owner ~port =
       match Plexus.Udp_mgr.bind udp ~owner ~port with
       | Ok ep -> ep
       | Error _ -> failwith "bench: bind failed"
     in
     let server = bind_exn udp_b ~owner:"srv" ~port:7 in
     let (_ : unit -> unit) =
       Plexus.Udp_mgr.install_recv udp_b server (fun _ -> ())
     in
     let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
     (* round 1 warms ARP and records the flow path, round 2 commits and
        first replays it — measured ops all hit when the cache is on *)
     for _ = 1 to 3 do
       Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 7) "warm";
       Sim.Engine.run p.Experiments.Common.engine
     done;
     (p.Experiments.Common.engine, udp_a, client))

let steady_uncached_env = steady_env ~flowcache:false
let steady_cached_env = steady_env ~flowcache:true

let steady_op env () =
  let engine, udp, client = Lazy.force env in
  let payload = Mbuf.alloc 1000 in
  Plexus.Udp_mgr.send_mbuf udp client ~dst:(Experiments.Common.ip_b, 7) payload;
  Sim.Engine.run engine

let test_udp_roundtrip_cached =
  Test.make ~name:"udp round trip (path-cached)"
    (Staged.stage (steady_op steady_cached_env))

(* Batched receive: 32 prebuilt valid frames injected at the server device
   as one coalesced interrupt per op ([Dev.deliver_batch] →
   [Dispatcher.raise_batch]), flow cache warm.  The receive path neither
   mutates nor frees the frames (and the server handler is a no-op), so
   the same chains are redelivered every op. *)
let udp_batch_env =
  lazy
    (let p =
       Experiments.Common.plexus_pair ~flowcache:true (Netsim.Costs.ethernet ())
     in
     let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
     let server =
       match Plexus.Udp_mgr.bind udp_b ~owner:"srv" ~port:7 with
       | Ok ep -> ep
       | Error _ -> failwith "bench: bind failed"
     in
     let (_ : unit -> unit) =
       Plexus.Udp_mgr.install_recv udp_b server (fun _ -> ())
     in
     let dev = Plexus.Ether_mgr.dev (Plexus.Stack.ether p.Experiments.Common.b) in
     let mac = Netsim.Dev.mac dev in
     let mk_frame () =
       let m = Mbuf.alloc 1000 in
       Proto.Udp.encapsulate ~checksum:true m ~src:Experiments.Common.ip_a
         ~dst:Experiments.Common.ip_b ~src_port:5000 ~dst_port:7;
       Proto.Ipv4.encapsulate m
         (Proto.Ipv4.make ~id:1 ~proto:Proto.Ipv4.proto_udp
            ~src:Experiments.Common.ip_a ~dst:Experiments.Common.ip_b
            ~payload_len:(Mbuf.length m) ());
       Proto.Ether.encapsulate m
         { Proto.Ether.dst = mac; src = mac; etype = Proto.Ether.etype_ip };
       Mbuf.ro m
     in
     let frames = List.init 32 (fun _ -> mk_frame ()) in
     (* one cold batch records the flow path; every later frame replays *)
     for _ = 1 to 2 do
       Netsim.Dev.deliver_batch dev frames;
       Sim.Engine.run p.Experiments.Common.engine
     done;
     (p.Experiments.Common.engine, dev, frames))

let test_udp_rx_batch =
  Test.make ~name:"udp rx batch of 32"
    (Staged.stage (fun () ->
         let engine, dev, frames = Lazy.force udp_batch_env in
         Netsim.Dev.deliver_batch dev frames;
         Sim.Engine.run engine))

(* ---- observability overhead subjects ---------------------------------- *)

(* The same full-stack UDP round trip under three observability settings:
   registry detached (the honest baseline — what the fast path costs with
   no instrumentation attached), registry attached with the Null sink
   (disabled tracing, the configuration the 5%% acceptance threshold is
   about), registry attached with a ring-buffer sink recording every
   span, and registry attached with the packet flight recorder sampling
   1-in-64 ingress frames (the 2%% acceptance threshold). *)
let observe_env ~observe ~ring ?(flight_rate = 0) () =
  lazy
    (let p =
       Experiments.Common.plexus_pair ~observe (Netsim.Costs.ethernet ())
     in
     if flight_rate > 0 then
       List.iter
         (fun stack ->
           let kernel = Netsim.Host.kernel (Plexus.Stack.host stack) in
           Observe.Flight.set_rate (Spin.Kernel.flight kernel) flight_rate)
         [ p.Experiments.Common.a; p.Experiments.Common.b ];
     if ring then
       List.iter
         (fun stack ->
           let kernel =
             Netsim.Host.kernel (Plexus.Stack.host stack)
           in
           Observe.Trace.set_sink
             (Spin.Kernel.trace kernel)
             (Observe.Trace.Ring (Observe.Trace.Ring.create ~capacity:4096 ())))
         [ p.Experiments.Common.a; p.Experiments.Common.b ];
     let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
     let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
     let bind_exn udp ~owner ~port =
       match Plexus.Udp_mgr.bind udp ~owner ~port with
       | Ok ep -> ep
       | Error _ -> failwith "bench: bind failed"
     in
     let server = bind_exn udp_b ~owner:"srv" ~port:7 in
     let (_ : unit -> unit) =
       Plexus.Udp_mgr.install_recv udp_b server (fun _ -> ())
     in
     let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
     Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 7) "warm";
     Sim.Engine.run p.Experiments.Common.engine;
     (p.Experiments.Common.engine, udp_a, client))

let observe_detached_name = "udp roundtrip, registry detached"
let observe_null_name = "udp roundtrip, registry + null sink"
let observe_ring_name = "udp roundtrip, registry + ring sink"
let observe_flight_name = "udp roundtrip, registry + 1/64 flight sampling"

(* One timed batch of full-stack round trips against an environment;
   returns host-ns per op. *)
let observe_batch env iters =
  let engine, udp, client = Lazy.force env in
  (* settle the heap so one environment's garbage (the ring sink churns
     span records) is not billed to the next environment's batch *)
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    let payload = Mbuf.alloc 1000 in
    Plexus.Udp_mgr.send_mbuf udp client
      ~dst:(Experiments.Common.ip_b, 7)
      payload;
    Sim.Engine.run engine
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9

(* A percent-level comparison cannot come from benchmarking each
   configuration in its own isolated pass — allocator and GC state drift
   between passes swamps the signal.  Instead the three environments are
   timed in interleaved rounds and each subject reports its median
   round, so slow drift affects all three alike. *)
let run_observe_subjects () =
  Experiments.Common.print_header
    "Observability overhead (interleaved rounds, host-machine ns per op)";
  let envs =
    [
      (observe_detached_name, observe_env ~observe:false ~ring:false ());
      (observe_null_name, observe_env ~observe:true ~ring:false ());
      (observe_ring_name, observe_env ~observe:true ~ring:true ());
      ( observe_flight_name,
        observe_env ~observe:true ~ring:false ~flight_rate:64 () );
    ]
  in
  (* force + warm every environment before any measurement *)
  List.iter (fun (_, env) -> ignore (observe_batch env 5_000)) envs;
  let rounds = 9 and iters = 12_000 in
  let samples =
    Array.of_list (List.map (fun (name, env) -> (name, env, ref [])) envs)
  in
  let n = Array.length samples in
  for r = 0 to rounds - 1 do
    (* rotate the starting subject each round: within a round the
       subjects run back-to-back, so clock-frequency drift would
       otherwise always bias the same (later) subjects *)
    for i = 0 to n - 1 do
      let _, env, acc = samples.((r + i) mod n) in
      acc := observe_batch env iters :: !acc
    done
  done;
  let samples = Array.to_list samples in
  List.map
    (fun (name, _, acc) ->
      (* the minimum round is the noise floor — interference (GC slices,
         scheduling) only ever adds time *)
      let best = List.fold_left min infinity !acc in
      Printf.printf "  %-44s %12.1f ns\n%!" name best;
      (name, best))
    samples

let datapath_tests =
  [
    test_udp_roundtrip;
    test_udp_roundtrip_cached;
    test_udp_rx_batch;
    test_fragment_12500;
    test_cksum_chain_1500;
    test_cksum_byte_1500;
    test_cksum_chain_12500;
    test_cksum_byte_12500;
    test_mbuf_alloc_recycle;
  ]

(* Deterministic per-op copy/alloc counts for the two key paths, measured
   with the Metrics counters rather than timed. *)
let datapath_counters () =
  let engine, udp, client = Lazy.force udp_env in
  let payload = Mbuf.alloc 1000 in
  Metrics.reset ();
  Plexus.Udp_mgr.send_mbuf udp client ~dst:(Experiments.Common.ip_b, 7) payload;
  Sim.Engine.run engine;
  let udp_s = Metrics.snapshot () in
  let big = Mbuf.of_string (String.make 12500 'v') in
  Metrics.reset ();
  let frags = Proto.Ip_frag.fragment ~mtu:1500 big in
  let frag_s = Metrics.snapshot () in
  [
    ("udp fast path: copies per op", udp_s.Metrics.copies);
    ("udp fast path: bytes copied per op", udp_s.Metrics.bytes_copied);
    ("udp fast path: buffer allocs per op", udp_s.Metrics.allocs);
    ("fragment 12.5KB: copies per op", frag_s.Metrics.copies);
    ("fragment 12.5KB: buffer allocs per op", frag_s.Metrics.allocs);
    ("fragment 12.5KB: fragments", List.length frags);
  ]

let micro_tests =
  [ test_direct_call ]
  @ dispatch_tests
  @ [
      test_guard;
      test_view_read;
      test_ipv4_parse;
      test_mbuf_alloc;
      test_mbuf_prepend;
      test_cksum_1500;
      test_tcp_encode;
    ]
  @ filter_tests
  @ [ test_link_unlink; test_ephemeral_plan ]

(* Runs the subjects, prints the human-readable table, and returns
   [(name, ns_per_op)] for the machine-readable record. *)
let run_bechamel ?(quota = 0.25) tests =
  Experiments.Common.print_header
    "Bechamel microbenchmarks (host-machine ns per operation)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  List.concat_map
    (fun test ->
      let results =
        Benchmark.all cfg instances
          (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.fold
        (fun name ols_result acc ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "  %-44s %12.1f ns\n%!" name est;
              (name, est) :: acc
          | _ ->
              Printf.printf "  %-44s (no estimate)\n%!" name;
              acc)
        analyzed [])
    tests

(* The demux subjects, recorded as JSON so the perf trajectory is
   comparable across revisions. *)
let write_dispatch_json path results =
  let dispatch_subject name = (name, List.assoc_opt name results) in
  let subjects =
    List.concat_map
      (fun n ->
        [
          dispatch_subject (Printf.sprintf "g dispatch linear (%d handlers)" n);
          dispatch_subject (Printf.sprintf "g dispatch indexed (%d handlers)" n);
          dispatch_subject (Printf.sprintf "g dispatch tree (%d handlers)" n);
        ])
      dispatch_counts
    @ List.map dispatch_subject
        [
          "g dispatch indexed (64 analyzers)";
          "g dispatch tree (64 analyzers)";
        ]
    @ List.map dispatch_subject
        [
          "g interpreted packet filter (5 nodes)";
          "g compiled packet filter (5 nodes)";
          "g interpreted packet filter (15 nodes)";
          "g compiled packet filter (15 nodes)";
        ]
  in
  let oc = open_out path in
  output_string oc "{\n  \"unit\": \"ns_per_op\",\n  \"subjects\": {\n";
  let entries =
    List.filter_map
      (fun (name, v) ->
        (* strip the bechamel group prefix *)
        let name =
          if String.length name > 2 && String.sub name 0 2 = "g " then
            String.sub name 2 (String.length name - 2)
          else name
        in
        Option.map (fun v -> Printf.sprintf "    %S: %.1f" name v) v)
      subjects
  in
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n  }\n}\n";
  close_out oc;
  Printf.printf "\n  wrote %s (%d subjects)\n%!" path (List.length entries)

(* The zero-copy datapath subjects: timed numbers plus the deterministic
   Metrics copy/alloc counts, same JSON shape as BENCH_dispatch.json with
   an extra "counters" map. *)
let write_datapath_json path results =
  let strip name =
    if String.length name > 2 && String.sub name 0 2 = "g " then
      String.sub name 2 (String.length name - 2)
    else name
  in
  let subjects =
    List.filter_map
      (fun test ->
        let name = "g " ^ Test.name test in
        Option.map (fun v -> (strip name, v)) (List.assoc_opt name results))
      datapath_tests
  in
  let counters = datapath_counters () in
  let oc = open_out path in
  output_string oc "{\n  \"unit\": \"ns_per_op\",\n  \"subjects\": {\n";
  output_string oc
    (String.concat ",\n"
       (List.map (fun (n, v) -> Printf.sprintf "    %S: %.1f" n v) subjects));
  output_string oc "\n  },\n  \"counters\": {\n";
  output_string oc
    (String.concat ",\n"
       (List.map (fun (n, v) -> Printf.sprintf "    %S: %d" n v) counters));
  output_string oc "\n  }\n}\n";
  close_out oc;
  Printf.printf "\n  wrote %s (%d subjects, %d counters)\n%!" path
    (List.length subjects) (List.length counters)

(* Patch individual subject values into an existing BENCH_datapath.json
   without disturbing the other subjects or the counters map — the
   flowcache-only section re-measures only its own subjects, so the
   stored uncached values (and their PR-over-PR trajectory) survive. *)
let patch_datapath_json path updates =
  let read_lines () =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  let lines =
    if Sys.file_exists path then read_lines ()
    else [ "{"; "  \"unit\": \"ns_per_op\","; "  \"subjects\": {"; "  }"; "}" ]
  in
  let lines, missing =
    List.fold_left
      (fun (lines, missing) (name, v) ->
        let key = Printf.sprintf "%S:" name in
        let found = ref false in
        let lines =
          List.map
            (fun l ->
              let t = String.trim l in
              if
                String.length t >= String.length key
                && String.sub t 0 (String.length key) = key
              then begin
                found := true;
                let comma =
                  if t.[String.length t - 1] = ',' then "," else ""
                in
                Printf.sprintf "    %S: %.1f%s" name v comma
              end
              else l)
            lines
        in
        if !found then (lines, missing) else (lines, (name, v) :: missing))
      (lines, []) updates
  in
  let lines =
    if missing = [] then lines
    else
      List.concat_map
        (fun l ->
          if String.trim l = "\"subjects\": {" then
            l
            :: List.rev_map
                 (fun (n, v) -> Printf.sprintf "    %S: %.1f," n v)
                 missing
          else [ l ])
        lines
  in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  Printf.printf "\n  patched %s (%d subject(s))\n%!" path (List.length updates)

let flowcache_cached_name = "udp round trip (path-cached)"
let flowcache_batch_name = "udp rx batch of 32"

(* The flow-cache acceptance record.  The cached and uncached round
   trips run the identical steady-state workload (extension trio
   installed, span tracing on — see [steady_env]) and differ only in the
   cache switch, so their ratio isolates what the cache buys.  Like the
   observability section, a ratio cannot come from benchmarking each
   side in its own isolated pass — allocator/GC drift between passes
   swamps the signal — so the subjects are timed in interleaved rounds,
   rotating the starting subject, and each reports its minimum round
   (the noise floor; interference only ever adds time).  Writes the two
   new subjects into BENCH_datapath.json and (with [--check]) gates on
   the cached path being at least 1.5x faster than the uncached one. *)
let run_flowcache ~check =
  Experiments.Common.print_header
    "Flow-path cache, steady state (interleaved rounds, host ns per op)";
  let time_batch op iters =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do op () done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
  in
  let batch_op () =
    let engine, dev, frames = Lazy.force udp_batch_env in
    Netsim.Dev.deliver_batch dev frames;
    Sim.Engine.run engine
  in
  let subjects =
    [|
      ("udp round trip (uncached, same workload)",
       steady_op steady_uncached_env, 8_000, ref []);
      (flowcache_cached_name, steady_op steady_cached_env, 8_000, ref []);
      (flowcache_batch_name, batch_op, 400, ref []);
    |]
  in
  (* force + warm every environment before any measurement *)
  Array.iter (fun (_, op, _, _) -> ignore (time_batch op 2_000)) subjects;
  let rounds = 9 in
  let n = Array.length subjects in
  for r = 0 to rounds - 1 do
    for i = 0 to n - 1 do
      let _, op, iters, acc = subjects.((r + i) mod n) in
      acc := time_batch op iters :: !acc
    done
  done;
  let best_of (name, _, _, acc) =
    let best = List.fold_left min infinity !acc in
    Printf.printf "  %-44s %12.1f ns\n%!" name best;
    best
  in
  let uncached = best_of subjects.(0) in
  let cached = best_of subjects.(1) in
  let batch = best_of subjects.(2) in
  patch_datapath_json "BENCH_datapath.json"
    [ (flowcache_cached_name, cached); (flowcache_batch_name, batch) ];
  Printf.printf
    "  path-cached speedup: %.2fx (uncached %.1f ns, cached %.1f ns)\n%!"
    (uncached /. cached) uncached cached;
  if check then
    if uncached < 1.5 *. cached then begin
      Printf.eprintf
        "FAIL: path-cached round trip only %.2fx faster than uncached \
         (need >= 1.5x)\n%!"
        (uncached /. cached);
      exit 1
    end
    else Printf.printf "  flow-cache check passed (>= 1.5x)\n%!"

(* The observability acceptance record: per-op times for the four
   settings and the derived overhead percentages.  The interesting
   numbers are [disabled_tracing_pct] — what attaching the registry with
   tracing disabled costs the UDP fast path relative to the detached
   baseline (5%% budget) — and [sampled_pct] — what 1-in-64 flight
   sampling adds on top of the attached-registry configuration it runs
   in (2%% budget).  Negative measured overhead (noise) is clamped
   to 0. *)
let write_observe_json path results =
  let find name = List.assoc_opt name results in
  let pct base v =
    match (base, v) with
    | Some b, Some v when b > 0. -> Some (Float.max 0. ((v -. b) /. b *. 100.))
    | _ -> None
  in
  let detached = find observe_detached_name in
  let null = find observe_null_name in
  let ring = find observe_ring_name in
  let flight = find observe_flight_name in
  let disabled_pct = pct detached null in
  let ring_pct = pct detached ring in
  let sampled_pct = pct null flight in
  let oc = open_out path in
  output_string oc "{\n  \"unit\": \"ns_per_op\",\n  \"subjects\": {\n";
  output_string oc
    (String.concat ",\n"
       (List.filter_map
          (fun (n, v) ->
            Option.map (fun v -> Printf.sprintf "    %S: %.1f" n v) v)
          [
            (observe_detached_name, detached);
            (observe_null_name, null);
            (observe_ring_name, ring);
            (observe_flight_name, flight);
          ]));
  output_string oc "\n  },\n  \"overhead\": {\n";
  output_string oc
    (String.concat ",\n"
       (List.filter_map
          (fun (n, v) ->
            Option.map (fun v -> Printf.sprintf "    %S: %.2f" n v) v)
          [
            ("disabled_tracing_pct", disabled_pct);
            ("ring_sink_pct", ring_pct);
            ("sampled_pct", sampled_pct);
          ]));
  output_string oc
    "\n  },\n  \"threshold_pct\": 5.0,\n  \"sampled_threshold_pct\": 2.0\n}\n";
  close_out oc;
  (match (disabled_pct, sampled_pct) with
  | Some p, Some s ->
      Printf.printf
        "\n\
        \  wrote %s (disabled-tracing overhead: %.2f%%, 1/64 sampling \
         overhead: %.2f%%)\n\
         %!"
        path p s
  | Some p, None ->
      Printf.printf
        "\n  wrote %s (disabled-tracing overhead on the UDP fast path: %.2f%%)\n%!"
        path p
  | None, _ -> Printf.printf "\n  wrote %s (incomplete estimates)\n%!" path);
  (disabled_pct, sampled_pct)

let run_observe ~check =
  let results = run_observe_subjects () in
  let disabled_pct, sampled_pct = write_observe_json "BENCH_observe.json" results in
  if check then begin
    (match disabled_pct with
    | Some p when p > 5.0 ->
        Printf.eprintf
          "FAIL: disabled-tracing overhead %.2f%% exceeds the 5%% budget\n%!" p;
        exit 1
    | Some p -> Printf.printf "  overhead check passed (%.2f%% <= 5%%)\n%!" p
    | None ->
        Printf.eprintf "FAIL: missing estimates for the observe subjects\n%!";
        exit 1);
    match sampled_pct with
    | Some p when p > 2.0 ->
        Printf.eprintf
          "FAIL: 1/64 flight-sampling overhead %.2f%% exceeds the 2%% budget\n%!"
          p;
        exit 1
    | Some p ->
        Printf.printf "  sampling overhead check passed (%.2f%% <= 2%%)\n%!" p
    | None ->
        Printf.eprintf "FAIL: missing estimate for the flight subject\n%!";
        exit 1
  end

(* The fault/overload acceptance record.  Unlike the timing sections,
   these numbers are simulated (deterministic): goodput with admission
   control off vs. on at 2x offered overload, plus a chaos-soak summary.
   The [--check] gate requires mitigated goodput >= 2x unmitigated and a
   clean soak. *)
let run_faults ~check =
  let p = Experiments.Overload.print () in
  let soak = Experiments.Chaos.print ~seeds:20 () in
  let ratio = Experiments.Overload.ratio p in
  let oc = open_out "BENCH_faults.json" in
  Printf.fprintf oc
    "{\n\
    \  \"unit\": \"datagrams_per_s\",\n\
    \  \"offered_pps\": %d,\n\
    \  \"unmitigated_goodput\": %.1f,\n\
    \  \"mitigated_goodput\": %.1f,\n\
    \  \"ratio\": %s,\n\
    \  \"chaos\": {\n\
    \    \"seeds\": %d,\n\
    \    \"udp_failures\": %d,\n\
    \    \"frag_failures\": %d,\n\
    \    \"tcp_failures\": %d,\n\
    \    \"cache_divergences\": %d\n\
    \  },\n\
    \  \"gate\": \"mitigated >= 2x unmitigated at 2x overload, soak clean\"\n\
     }\n"
    p.Experiments.Overload.offered_pps p.Experiments.Overload.unmitigated_goodput
    p.Experiments.Overload.mitigated_goodput
    (if ratio = infinity then "\"inf\"" else Printf.sprintf "%.2f" ratio)
    soak.Experiments.Chaos.seeds soak.Experiments.Chaos.udp_failures
    soak.Experiments.Chaos.frag_failures soak.Experiments.Chaos.tcp_failures
    soak.Experiments.Chaos.cache_divergences;
  close_out oc;
  Printf.printf "\n  wrote BENCH_faults.json (goodput ratio: %s)\n%!"
    (if ratio = infinity then "inf" else Printf.sprintf "%.2fx" ratio);
  if check then begin
    let mitigation_ok =
      p.Experiments.Overload.mitigated_goodput
      >= 2. *. p.Experiments.Overload.unmitigated_goodput
      && p.Experiments.Overload.mitigated_goodput > 0.
    in
    if not mitigation_ok then begin
      Printf.eprintf
        "FAIL: mitigated goodput %.1f/s not >= 2x unmitigated %.1f/s\n%!"
        p.Experiments.Overload.mitigated_goodput
        p.Experiments.Overload.unmitigated_goodput;
      exit 1
    end;
    if not (Experiments.Chaos.soak_ok soak) then begin
      Printf.eprintf "FAIL: chaos soak reported invariant failures\n%!";
      exit 1
    end;
    Printf.printf "  faults check passed (>= 2x goodput, soak clean)\n%!"
  end

(* The steady-state scale record: host cost per simulated packet with 1k
   vs. 100k live flows parked across the server farm (Experiments.Farm).
   The two probe workloads are sim-identical — same topology, same
   probe count, same deterministic schedule (their simulated p50/p99
   match exactly) — so the host-time ratio isolates what connection
   population costs the implementation: flow-table lookups, timer-wheel
   occupancy, path-cache pressure, allocator/GC footprint.  Timed like
   the other percent-level sections: Gc.full_major before every round,
   interleaved rounds, each subject reporting its minimum (the noise
   floor).  [--check] gates the ratio at 1.3x — the sharded-table and
   timer-wheel acceptance criterion. *)
let scale_flows_lo = 1_000
let scale_flows_hi = 100_000
let scale_ratio_limit = 1.3

let run_scale ~check =
  Experiments.Common.print_header
    "Steady-state scale: host ns per simulated packet vs. live flows";
  let clients = 8 and probes = 500 in
  let setup live =
    Printf.printf "  establishing %d live flows...\n%!" live;
    Experiments.Farm.scale_setup ~clients ~live_flows:live ~probes ()
  in
  let lo_run = setup scale_flows_lo in
  let hi_run = setup scale_flows_hi in
  let time_round run =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let p = run () in
    let dt = Unix.gettimeofday () -. t0 in
    (p, dt *. 1e9 /. float_of_int p.Experiments.Farm.packets)
  in
  (* warm both before any measured round *)
  ignore (time_round lo_run);
  ignore (time_round hi_run);
  let rounds = 5 in
  let measure run =
    let probe = ref None and best = ref infinity in
    let tick () =
      let p, ns = time_round run in
      probe := Some p;
      if ns < !best then best := ns
    in
    (probe, best, tick)
  in
  let lo_probe, lo_best, lo_tick = measure lo_run in
  let hi_probe, hi_best, hi_tick = measure hi_run in
  for r = 0 to rounds - 1 do
    if r mod 2 = 0 then begin lo_tick (); hi_tick () end
    else begin hi_tick (); lo_tick () end
  done;
  let lo = Option.get !lo_probe and hi = Option.get !hi_probe in
  let row label (p : Experiments.Farm.probe) ns =
    Printf.printf
      "  %-18s %10.0f ns/pkt %9.2f Mb/s sim goodput %8.1f us sim p50 %8.1f \
       us sim p99\n\
       %!"
      label ns p.Experiments.Farm.probe_goodput_mbps
      p.Experiments.Farm.probe_p50_us p.Experiments.Farm.probe_p99_us
  in
  row (Printf.sprintf "%d live flows" scale_flows_lo) lo !lo_best;
  row (Printf.sprintf "%d live flows" scale_flows_hi) hi !hi_best;
  let ratio = !hi_best /. !lo_best in
  let oc = open_out "BENCH_scale.json" in
  let emit_row (p : Experiments.Farm.probe) ns =
    Printf.sprintf
      "    { \"live_flows\": %d, \"established\": %d, \"probes\": %d, \
       \"packets\": %d, \"ns_per_packet\": %.1f, \"sim_goodput_mbps\": %.2f, \
       \"sim_p50_us\": %.1f, \"sim_p99_us\": %.1f, \"probe_errors\": %d }"
      p.Experiments.Farm.live_flows p.Experiments.Farm.established
      p.Experiments.Farm.probes p.Experiments.Farm.packets ns
      p.Experiments.Farm.probe_goodput_mbps p.Experiments.Farm.probe_p50_us
      p.Experiments.Farm.probe_p99_us p.Experiments.Farm.probe_errors
  in
  Printf.fprintf oc
    "{\n\
    \  \"unit\": \"host_ns_per_simulated_packet\",\n\
    \  \"note\": \"sim_* columns are simulated-time probe stats; the probe \
     schedule is population-independent, so they are identical across rows \
     by design — only ns_per_packet measures host cost vs. population\",\n\
    \  \"clients\": %d,\n\
    \  \"rows\": [\n%s,\n%s\n  ],\n\
    \  \"ratio\": %.3f,\n\
    \  \"gate\": \"per-packet cost at %dk live flows <= %.1fx the %dk-flow \
     cost\"\n\
     }\n"
    clients
    (emit_row lo !lo_best)
    (emit_row hi !hi_best)
    ratio (scale_flows_hi / 1000) scale_ratio_limit (scale_flows_lo / 1000);
  close_out oc;
  Printf.printf "\n  wrote BENCH_scale.json (cost ratio %dk/%dk: %.2fx)\n%!"
    (scale_flows_hi / 1000) (scale_flows_lo / 1000) ratio;
  if check then begin
    let population_ok =
      lo.Experiments.Farm.established = scale_flows_lo
      && hi.Experiments.Farm.established = scale_flows_hi
    in
    if not population_ok then begin
      Printf.eprintf "FAIL: flow population incomplete (%d/%d, %d/%d)\n%!"
        lo.Experiments.Farm.established scale_flows_lo
        hi.Experiments.Farm.established scale_flows_hi;
      exit 1
    end;
    if lo.Experiments.Farm.probe_errors > 0 || hi.Experiments.Farm.probe_errors > 0
    then begin
      Printf.eprintf "FAIL: probe errors (%d at %dk, %d at %dk)\n%!"
        lo.Experiments.Farm.probe_errors (scale_flows_lo / 1000)
        hi.Experiments.Farm.probe_errors (scale_flows_hi / 1000);
      exit 1
    end;
    if ratio > scale_ratio_limit then begin
      Printf.eprintf
        "FAIL: per-packet cost at %dk live flows is %.2fx the %dk cost \
         (limit %.1fx)\n%!"
        (scale_flows_hi / 1000) ratio (scale_flows_lo / 1000) scale_ratio_limit;
      exit 1
    end;
    Printf.printf "  scale check passed (%.2fx <= %.1fx, populations full, \
                   no probe errors)\n%!"
      ratio scale_ratio_limit
  end

(* The multicore-datapath acceptance record: the steady-state UDP
   workload sharded RSS-style across OCaml 5 execution domains
   ([Par.Node]).  Throughput is measured in *simulated* time — datagrams
   delivered over the makespan, the busiest domain's simulated CPU busy
   time — so the reported speedup is a property of the sharded datapath
   itself, not of how many physical cores the host happens to expose
   (CI runners and the dev container may pin a single core; the runs
   still execute on real [Stdlib.Domain]s, and counter-for-counter
   equivalence against the 1-domain oracle is asserted on every
   invocation).  Host wall time and core count are recorded as
   supplementary context, following BENCH_faults.json's precedent of
   simulated (deterministic) metrics. *)
let parallel_seed = 42
let parallel_flows = 256
let parallel_pkts = 40

(* the CI gate at the largest domain count exercised *)
let parallel_gate domains =
  if domains >= 4 then 1.6 else if domains >= 2 then 1.3 else 1.0

let run_parallel ~check ~max_domains =
  Experiments.Common.print_header
    "Multicore datapath: RSS sharding across domains (simulated datagrams/s)";
  let plan =
    Par.Rss.make ~seed:parallel_seed ~flows:parallel_flows
      ~pkts_per_flow:parallel_pkts ()
  in
  let counts = List.filter (fun d -> d <= max_domains) [ 1; 2; 4 ] in
  let runs = List.map (fun domains -> Par.Node.run ~domains plan) counts in
  let oracle = List.hd runs in
  (* the equivalence soak is cheap at this scale: assert it on every
     bench invocation, gated or not *)
  List.iter
    (fun (s : Par.Node.stats) ->
      List.iter2
        (fun (name, expect) (_, got) ->
          if expect <> got then begin
            Printf.eprintf
              "FAIL: %d-domain run diverges from the 1-domain oracle on %s \
               (%d vs %d)\n%!"
              s.Par.Node.domains name got expect;
            exit 1
          end)
        (Par.Node.equiv_counters oracle)
        (Par.Node.equiv_counters s))
    (List.tl runs);
  let speedup (s : Par.Node.stats) =
    s.Par.Node.datagrams_per_s /. oracle.Par.Node.datagrams_per_s
  in
  List.iter
    (fun (s : Par.Node.stats) ->
      Printf.printf
        "  %d domain%s %11.0f dg/s %6.2fx speedup %7d delivered %6d \
         forwarded %9.1f ms busy\n%!"
        s.Par.Node.domains
        (if s.Par.Node.domains = 1 then " " else "s")
        s.Par.Node.datagrams_per_s (speedup s) s.Par.Node.delivered
        s.Par.Node.forwarded
        (s.Par.Node.busy_max_us /. 1000.))
    runs;
  let oc = open_out "BENCH_parallel.json" in
  let emit_row (s : Par.Node.stats) =
    Printf.sprintf
      "    { \"domains\": %d, \"delivered\": %d, \"forwarded\": %d, \
       \"busy_max_us\": %.1f, \"datagrams_per_s\": %.0f, \"speedup\": %.2f, \
       \"wall_s\": %.3f }"
      s.Par.Node.domains s.Par.Node.delivered s.Par.Node.forwarded
      s.Par.Node.busy_max_us s.Par.Node.datagrams_per_s (speedup s)
      s.Par.Node.wall_s
  in
  Printf.fprintf oc
    "{\n\
    \  \"unit\": \"simulated_datagrams_per_s\",\n\
    \  \"note\": \"throughput in simulated time: delivered datagrams over \
     the busiest domain's simulated CPU busy time; host-independent. \
     wall_s and host_cores are informational only.\",\n\
    \  \"host_cores\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"flows\": %d,\n\
    \  \"pkts_per_flow\": %d,\n\
    \  \"frames\": %d,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"equivalence\": \"1-domain oracle vs N-domain counters identical \
     (asserted on every run)\",\n\
    \  \"gate\": \"simulated speedup >= 1.6x at 4 domains (>= 1.3x at 2)\"\n\
     }\n"
    (Stdlib.Domain.recommended_domain_count ())
    parallel_seed parallel_flows parallel_pkts
    (Array.length plan.Par.Rss.frames)
    (String.concat ",\n" (List.map emit_row runs));
  close_out oc;
  let top = List.nth runs (List.length runs - 1) in
  let top_speedup = speedup top in
  Printf.printf
    "\n  wrote BENCH_parallel.json (%.2fx simulated speedup at %d domains)\n%!"
    top_speedup top.Par.Node.domains;
  if check then begin
    let need = parallel_gate top.Par.Node.domains in
    if top.Par.Node.domains < 2 then begin
      Printf.eprintf "FAIL: parallel check needs at least 2 domains\n%!";
      exit 1
    end;
    if top_speedup < need then begin
      Printf.eprintf
        "FAIL: simulated speedup %.2fx at %d domains below the %.1fx gate\n%!"
        top_speedup top.Par.Node.domains need;
      exit 1
    end;
    Printf.printf
      "  parallel check passed (%.2fx >= %.1fx at %d domains, equivalence \
       exact)\n%!"
      top_speedup need top.Par.Node.domains
  end

(* ---- lifecycle: verifier, quarantine, zero-drop hot-swap --------------- *)

let lifecycle_runs = 5
let lifecycle_swap_every = 64

let run_lifecycle ~check ~max_domains =
  let r = Experiments.Lifecycle.print ~runs:lifecycle_runs () in
  let dropped = Experiments.Lifecycle.dropped r in
  (* Parallel leg: the same hot-swap protocol churning on every domain
     of the multicore datapath, still counter-for-counter equivalent to
     the 1-domain oracle.  Flow cache off: each swap bumps the event
     generation, which invalidates path recordings at domain-dependent
     points — bookkeeping divergence, not behavioral. *)
  let plan =
    Par.Rss.make ~seed:parallel_seed ~flows:parallel_flows
      ~pkts_per_flow:parallel_pkts ()
  in
  let par_domains = min 2 max_domains in
  let oracle =
    Par.Node.run ~domains:1 ~flowcache:false
      ~swap_every:lifecycle_swap_every plan
  in
  let par =
    Par.Node.run ~domains:par_domains ~flowcache:false
      ~swap_every:lifecycle_swap_every plan
  in
  let par_equiv =
    List.for_all2
      (fun (name, expect) (_, got) ->
        if expect <> got then
          Printf.eprintf
            "FAIL: %d-domain swap-churn run diverges from the 1-domain \
             oracle on %s (%d vs %d)\n%!"
            par.Par.Node.domains name got expect;
        expect = got)
      (Par.Node.equiv_counters oracle)
      (Par.Node.equiv_counters par)
  in
  Printf.printf
    "  par churn: %d swaps at 1 domain, %d at %d domains, %d delivered, \
     equivalence %s\n%!"
    oracle.Par.Node.swaps par.Par.Node.swaps par.Par.Node.domains
    par.Par.Node.delivered
    (if par_equiv then "exact" else "BROKEN");
  let oc = open_out "BENCH_lifecycle.json" in
  Printf.fprintf oc
    "{\n\
    \  \"unit\": \"invariants\",\n\
    \  \"note\": \"zero-drop hot-swap soak: datagrams sent vs sunk across \
     Linker.replace churn, swap drain latency in simulated ns, runtime \
     quarantine and static verifier rejection; plus 2-domain swap churn \
     equivalence against the 1-domain oracle.\",\n\
    \  \"runs\": %d,\n\
    \  \"sent\": %d,\n\
    \  \"sunk\": %d,\n\
    \  \"dropped\": %d,\n\
    \  \"monitored\": %d,\n\
    \  \"swaps\": %d,\n\
    \  \"max_inflight_at_flip\": %d,\n\
    \  \"drain_max_ns\": %d,\n\
    \  \"quarantined_runs\": %d,\n\
    \  \"verifier_rejected_runs\": %d,\n\
    \  \"par\": { \"domains\": %d, \"swap_every\": %d, \"swaps\": %d, \
     \"delivered\": %d, \"equivalent\": %b },\n\
    \  \"gate\": \"dropped = 0, swaps > 0 with inflight observed at a flip, \
     quarantine and verifier rejection on every run, par churn equivalence \
     exact\"\n\
     }\n"
    r.Experiments.Lifecycle.l_runs r.Experiments.Lifecycle.l_sent
    r.Experiments.Lifecycle.l_sunk dropped r.Experiments.Lifecycle.l_monitored
    r.Experiments.Lifecycle.l_swaps r.Experiments.Lifecycle.l_max_inflight
    r.Experiments.Lifecycle.l_drain_max_ns
    r.Experiments.Lifecycle.l_quarantined
    r.Experiments.Lifecycle.l_rejected par.Par.Node.domains
    lifecycle_swap_every par.Par.Node.swaps par.Par.Node.delivered par_equiv;
  close_out oc;
  Printf.printf
    "\n\
    \  wrote BENCH_lifecycle.json (%d swaps, %d in flight at worst flip, 0 \
     drops expected: dropped=%d)\n\
     %!"
    r.Experiments.Lifecycle.l_swaps r.Experiments.Lifecycle.l_max_inflight
    dropped;
  if check then begin
    if not (Experiments.Lifecycle.report_ok r) then begin
      Printf.eprintf
        "FAIL: lifecycle soak violated an invariant (dropped=%d swaps=%d \
         max_inflight=%d quarantined=%d/%d rejected=%d/%d failures=%d)\n%!"
        dropped r.Experiments.Lifecycle.l_swaps
        r.Experiments.Lifecycle.l_max_inflight
        r.Experiments.Lifecycle.l_quarantined r.Experiments.Lifecycle.l_runs
        r.Experiments.Lifecycle.l_rejected r.Experiments.Lifecycle.l_runs
        r.Experiments.Lifecycle.l_failures;
      exit 1
    end;
    if not par_equiv then exit 1;
    if par.Par.Node.swaps = 0 || oracle.Par.Node.swaps = 0 then begin
      Printf.eprintf "FAIL: par swap churn performed no swaps\n%!";
      exit 1
    end;
    Printf.printf
      "  lifecycle check passed (0 drops across %d swaps, quarantine + \
       verifier enforced, par churn equivalent)\n%!"
      (r.Experiments.Lifecycle.l_swaps + par.Par.Node.swaps
      + oracle.Par.Node.swaps)
  end

(* ---- Part 2: paper reproduction --------------------------------------- *)

let () =
  let dispatch_only = Array.mem "--dispatch-only" Sys.argv in
  let datapath_only = Array.mem "--datapath-only" Sys.argv in
  let flowcache_only = Array.mem "--flowcache-only" Sys.argv in
  let observe_only = Array.mem "--observe-only" Sys.argv in
  let faults_only = Array.mem "--faults-only" Sys.argv in
  let scale_only = Array.mem "--scale-only" Sys.argv in
  let parallel_only = Array.mem "--parallel-only" Sys.argv in
  let lifecycle_only = Array.mem "--lifecycle-only" Sys.argv in
  let check = Array.mem "--check" Sys.argv in
  let max_domains =
    let v = ref 4 in
    Array.iteri
      (fun i a ->
        if a = "--max-domains" && i + 1 < Array.length Sys.argv then
          v := int_of_string Sys.argv.(i + 1))
      Sys.argv;
    !v
  in
  if dispatch_only then begin
    let results = run_bechamel (dispatch_tests @ filter_tests) in
    write_dispatch_json "BENCH_dispatch.json" results;
    (* The merged-tree gates: at 256 handlers the single walk must beat
       the hash-bucket index by 25%, and the walk itself must stay flat —
       within 15% of the event's own 1-handler cost. *)
    if check then begin
      let get name = List.assoc_opt ("g " ^ name) results in
      match
        ( get "dispatch tree (256 handlers)",
          get "dispatch indexed (256 handlers)",
          get "dispatch tree (1 handlers)" )
      with
      | Some t256, Some i256, Some t1 ->
          Printf.printf
            "\n  dispatch gate: tree(256)=%.1fns indexed(256)=%.1fns \
             tree(1)=%.1fns\n%!"
            t256 i256 t1;
          if t256 > 0.75 *. i256 then begin
            Printf.eprintf
              "FAIL: tree(256) %.1fns above 0.75x indexed(256) %.1fns\n%!" t256
              (0.75 *. i256);
            exit 1
          end;
          if t256 > 1.15 *. t1 then begin
            Printf.eprintf
              "FAIL: tree(256) %.1fns above 1.15x tree(1) %.1fns — the walk \
               is not flat in handler count\n%!"
              t256 (1.15 *. t1);
            exit 1
          end;
          Printf.printf
            "  dispatch check passed (tree(256) <= 0.75x indexed(256), <= \
             1.15x tree(1))\n%!"
      | _ ->
          Printf.eprintf "FAIL: dispatch gate subjects missing\n%!";
          exit 1
    end
  end
  else if datapath_only then begin
    let results = run_bechamel datapath_tests in
    write_datapath_json "BENCH_datapath.json" results
  end
  else if flowcache_only then run_flowcache ~check
  else if observe_only then run_observe ~check
  else if faults_only then run_faults ~check
  else if scale_only then run_scale ~check
  else if parallel_only then run_parallel ~check ~max_domains
  else if lifecycle_only then run_lifecycle ~check ~max_domains
  else begin
    let results = run_bechamel (micro_tests @ datapath_tests) in
    write_dispatch_json "BENCH_dispatch.json" results;
    write_datapath_json "BENCH_datapath.json" results;
    run_observe ~check:false;
    run_faults ~check:false;
    run_parallel ~check:false ~max_domains;
    run_lifecycle ~check:false ~max_domains;
    ignore (Experiments.Fig5.print ~iters:200 ());
    ignore (Experiments.Tput.print ~bytes:2_000_000 ());
    ignore (Experiments.Fig6.print ());
    ignore (Experiments.Fig7.print ~iters:50 ());
    ignore (Experiments.Micro.print ~iters:100 ());
    ignore (Experiments.Sweep.print ~iters:100 ());
    ignore (Experiments.Livelock.print ());
    Experiments.Motivate.print ();
    ignore (Experiments.Http_bench.print ());
    ignore (Experiments.Farm.print ());
    Experiments.Ablate.print ();
    print_newline ()
  end
